package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"jetty/internal/metrics"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// Conservation: a timeline is an exact decomposition of the run, never a
// lossy summary. Summing any timeline's windows must reproduce the
// end-of-run metrics bit for bit — references, every L2 event counter,
// every filter counter — and attaching a sampler must not change any
// final result. Both properties are exercised on random
// (workload, machine, seed, interval) points and on the whole library.

// assertConserves sums res.Timeline's windows and compares them to the
// aggregates on res itself.
func assertConserves(t *testing.T, label string, res AppResult) {
	t.Helper()
	tl := res.Timeline
	if tl == nil {
		t.Fatalf("%s: sampled run carries no timeline", label)
	}
	refs, counts, filters := tl.Sum()
	if refs != res.Refs {
		t.Errorf("%s: windows sum to %d refs, run has %d", label, refs, res.Refs)
	}
	if counts != res.Counts {
		t.Errorf("%s: window counts do not conserve:\n sum %+v\n run %+v", label, counts, res.Counts)
	}
	if len(filters) != len(res.FilterCounts) {
		t.Fatalf("%s: %d filter sums for %d filters", label, len(filters), len(res.FilterCounts))
	}
	for i := range filters {
		if filters[i] != res.FilterCounts[i] {
			t.Errorf("%s: filter %s windows do not conserve:\n sum %+v\n run %+v",
				label, res.FilterNames[i], filters[i], res.FilterCounts[i])
		}
	}
	// Window bookkeeping is internally consistent too.
	var prevEnd uint64
	for i := range tl.Windows {
		w := &tl.Windows[i]
		if w.StartRef != prevEnd || w.EndRef-w.StartRef != w.Refs {
			t.Fatalf("%s: window %d bounds inconsistent: %+v after end %d", label, i, w, prevEnd)
		}
		prevEnd = w.EndRef
	}
	if prevEnd != res.Refs {
		t.Errorf("%s: windows end at %d, run at %d", label, prevEnd, res.Refs)
	}
}

// stripTimeline clears the only field a sampled result may legitimately
// add, for bit-identity comparison against the unsampled run.
func stripTimeline(res AppResult) AppResult {
	res.Timeline = nil
	return res
}

func TestTimelineConservesUnderRandomRuns(t *testing.T) {
	const rounds = 6
	intervals := []uint64{64, 512, 1 << 12, 1 << 14, 1 << 16 /* > run length: single flush window */}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(0x71AE ^ int64(round)*976369))
			sp := randSpec(r, round)
			cfg, err := randMachine(r, safetyBank(r))
			if err != nil {
				t.Fatal(err)
			}
			interval := intervals[r.Intn(len(intervals))]

			sampled, err := RunAppSampledCtx(context.Background(), sp, cfg,
				SampleOptions{Interval: interval}, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertConserves(t, fmt.Sprintf("iv=%d", interval), sampled)

			// Sampling enabled vs disabled: bit-identical final results.
			plain, err := RunAppCtx(context.Background(), sp, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripTimeline(sampled), plain) {
				t.Errorf("sampled run diverged from unsampled:\n sampled %+v\n plain   %+v",
					stripTimeline(sampled), plain)
			}
		})
	}
}

func TestTimelineConservesOnLibrary(t *testing.T) {
	cfg, err := PaperBankConfig(4, false, goldenConfigs)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range workload.Library() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunAppSampledCtx(context.Background(), sp.Scale(0.02), cfg,
				SampleOptions{Interval: 1024}, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertConserves(t, sp.Name, res)
		})
	}
}

// TestSampledReplayMatchesDirect extends the replay guarantee to
// sampling: a sampled replay of a captured trace conserves, matches the
// unsampled replay on every aggregate, and its timeline equals the
// capturing run's (same stream, same machine, same boundaries).
func TestSampledReplayMatchesDirect(t *testing.T) {
	cfg, err := PaperBankConfig(4, false, goldenConfigs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Lookup("WebServer")
	if err != nil {
		t.Fatal(err)
	}
	sp = sp.Scale(0.02)
	opt := SampleOptions{Interval: 1024}

	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, cfg.CPUs, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAppCapturedCtx(context.Background(), sp, cfg, tw, nil); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := LoadTrace("", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	sampled, err := RunTraceSampledCtx(context.Background(), in, cfg, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertConserves(t, "replay", sampled)

	plain, err := RunTraceCtx(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTimeline(sampled), plain) {
		t.Error("sampled replay diverged from unsampled replay")
	}

	// And the replayed timeline equals the one the generator-driven run
	// would have produced.
	genSampled, err := RunAppSampledCtx(context.Background(), sp, cfg, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sampled.Timeline, genSampled.Timeline) {
		t.Error("replayed timeline differs from the generator run's timeline")
	}
}

// TestSampledEngineRunsShareAndCloneTimelines pins the engine-backed
// path: sampled submissions are cached under their own key (never
// colliding with unsampled runs of the same cell), identical sampled
// submissions share one execution, and cached timelines are deep-cloned
// to each caller.
func TestSampledEngineRunsShareAndCloneTimelines(t *testing.T) {
	cfg, err := PaperBankConfig(4, false, goldenConfigs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Lookup("Lu")
	if err != nil {
		t.Fatal(err)
	}
	sp = sp.Scale(0.02)
	opt := SampleOptions{Interval: 1024}
	r := DefaultRunner()
	ctx := context.Background()

	j1 := r.SubmitSampled(sp, cfg, opt)
	j2 := r.SubmitSampled(sp, cfg, opt)
	if j1.Status().Key != j2.Status().Key {
		t.Fatal("identical sampled runs have different keys")
	}
	plainKey := r.Submit(sp, cfg)
	if plainKey.Status().Key == j1.Status().Key {
		t.Fatal("sampled and unsampled runs share a cache key")
	}
	plainKey.Cancel()

	a, err := waitResult(ctx, j1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := waitResult(ctx, j2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Timeline == nil || b.Timeline == nil {
		t.Fatal("engine-backed sampled run lost its timeline")
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Error("shared sampled runs disagree")
	}
	if &a.Timeline.Windows[0] == &b.Timeline.Windows[0] {
		t.Error("cached timeline not cloned per caller")
	}
	assertConserves(t, "engine", a)

	// An invalid interval fails cleanly through the engine.
	bad := r.SubmitSampled(sp, cfg, SampleOptions{Interval: metrics.MinInterval - 1})
	if _, err := bad.Wait(ctx); err == nil {
		t.Error("sub-minimum interval accepted")
	}
}
