package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"jetty/internal/trace"
	"jetty/internal/workload"
)

// stripLabel zeroes the fields that legitimately differ between a
// generator-driven run and its trace replay: the workload spec (a
// replay has only a pseudo-spec) and the footprint derived from it.
// Everything else — every counter, rate, histogram and coverage — must
// be identical.
func stripLabel(r AppResult) AppResult {
	r.Spec = workload.Spec{}
	r.MemoryBytes = 0
	return r
}

// TestTraceReplayMatchesDirect is the acceptance test of the trace
// pipeline: exporting a workload to a v1 trace file and replaying it
// through the simulator produces statistics identical to the direct
// in-memory run, for both compression modes, with a full filter bank
// attached.
func TestTraceReplayMatchesDirect(t *testing.T) {
	cfg, err := PaperBankConfig(4, false, []string{"HJ(IJ-10x4x7,EJ-32x4)", "EJ-32x4", "IJ-9x4x7"})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Lookup("Database")
	if err != nil {
		t.Fatal(err)
	}
	sp = sp.Scale(0.05)

	direct, err := RunApp(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, compress := range []bool{false, true} {
		// Capture the run's reference stream into a trace file.
		var file bytes.Buffer
		tw, err := trace.NewWriter(&file, cfg.CPUs, trace.WriterOptions{
			Compress: compress,
			Meta:     trace.Meta{App: sp.Name},
		})
		if err != nil {
			t.Fatal(err)
		}
		captured, err := RunAppCapturedCtx(context.Background(), sp, cfg, tw, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(captured, direct) {
			t.Fatal("capturing perturbed the run")
		}
		if tw.Records() != direct.Refs {
			t.Fatalf("captured %d records, run stepped %d", tw.Records(), direct.Refs)
		}

		// Replay the file and demand identical statistics.
		in, err := LoadTrace("", file.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if in.Name != sp.Name || in.CPUs != cfg.CPUs || in.Records != direct.Refs {
			t.Fatalf("LoadTrace = %s/%d cpus/%d records", in.Name, in.CPUs, in.Records)
		}
		replayed, err := RunTraceCtx(context.Background(), in, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripLabel(replayed), stripLabel(direct)) {
			t.Errorf("compress=%v: replay diverged from the direct run\ndirect: %+v\nreplay: %+v",
				compress, stripLabel(direct), stripLabel(replayed))
		}
		if replayed.Spec.Name != sp.Name {
			t.Errorf("replay label = %q", replayed.Spec.Name)
		}
	}
}

// TestTraceReplayThroughEngine exercises the engine path: identical
// replays share one execution and the second submission is a cache hit.
func TestTraceReplayThroughEngine(t *testing.T) {
	cfg, err := PaperBankConfig(4, false, []string{"EJ-32x4"})
	if err != nil {
		t.Fatal(err)
	}
	sp := workload.Throughput().Scale(0.02)

	var file bytes.Buffer
	tw, err := trace.NewWriter(&file, cfg.CPUs, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAppCapturedCtx(context.Background(), sp, cfg, tw, nil); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := LoadTrace("", file.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	r := DefaultRunner()
	first, err := r.RunTrace(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.RunTrace(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("engine replays of the same trace differ")
	}
}

func TestTraceFingerprint(t *testing.T) {
	cfgA, err := PaperBankConfig(4, false, []string{"EJ-32x4"})
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfgA
	cfgB.L2.SizeBytes *= 2
	fpA := TraceFingerprint("d1", cfgA)
	if fpA != TraceFingerprint("d1", cfgA) {
		t.Error("fingerprint not deterministic")
	}
	if fpA == TraceFingerprint("d2", cfgA) {
		t.Error("digest not covered by fingerprint")
	}
	if fpA == TraceFingerprint("d1", cfgB) {
		t.Error("config not covered by fingerprint")
	}
	if fpA == Fingerprint(workload.Throughput(), cfgA) {
		t.Error("trace and spec fingerprints collide")
	}
}

func TestRunTraceRejectsNarrowMachine(t *testing.T) {
	cfg, err := PaperBankConfig(2, false, []string{"EJ-32x4"})
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if _, err := trace.Record(&file, workload.Throughput().Scale(0.001).Source(4), 100, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	in, err := LoadTrace("wide", file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTraceCtx(context.Background(), in, cfg, nil); err == nil {
		t.Error("4-cpu trace accepted on a 2-cpu machine")
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace("x", []byte("not a trace")); err == nil {
		t.Error("garbage accepted")
	}
	var empty bytes.Buffer
	w, err := trace.NewWriter(&empty, 2, trace.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace("x", empty.Bytes()); err == nil {
		t.Error("empty trace accepted")
	}
}
