package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"jetty/internal/engine"
	"jetty/internal/store"
)

// Result (de)serialization for the persistent store. The codec must be
// stable and lossless: a result decoded from disk is handed out by the
// engine exactly like a freshly computed one, and the kill-and-restart
// recovery test pins DeepEqual between the two. JSON gives us that
// here — every AppResult field (and every field of its component
// structs) is exported, Go's float64 encoding round-trips exactly
// (shortest-representation encode, exact decode), and nil-vs-empty
// slice distinctions are normalized by AppResult.Clone on every
// engine-backed read path anyway.

// EncodeResult serializes one AppResult for the on-disk result store.
func EncodeResult(r AppResult) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult is the inverse of EncodeResult. Unknown fields are an
// error: an entry written by a newer daemon whose AppResult grew a
// field must read as a miss (and be recomputed), not silently drop
// data.
func DecodeResult(data []byte) (AppResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r AppResult
	if err := dec.Decode(&r); err != nil {
		return AppResult{}, fmt.Errorf("sim: decoding stored result: %w", err)
	}
	return r, nil
}

// DiskCache adapts a *store.Store to engine.ResultStore: the glue that
// makes the crash-safe result directory the engine's L3 tier. It only
// persists AppResult values — the sole result type jettyd's engine
// carries — and treats any undecodable entry as a miss so the engine
// recomputes and overwrites it.
type DiskCache struct {
	st *store.Store
}

var _ engine.ResultStore = (*DiskCache)(nil)

// NewDiskCache wraps st as an engine.ResultStore.
func NewDiskCache(st *store.Store) *DiskCache {
	return &DiskCache{st: st}
}

// Load implements engine.ResultStore.
func (d *DiskCache) Load(key string) (any, bool) {
	data, ok := d.st.GetResult(key)
	if !ok {
		return nil, false
	}
	r, err := DecodeResult(data)
	if err != nil {
		// Valid JSON that is not a current AppResult (e.g. written by a
		// different format revision): drop it so the recomputed result
		// replaces it, and miss.
		_ = d.st.DeleteResult(key)
		return nil, false
	}
	return r, true
}

// Store implements engine.ResultStore. Persistence failures are
// swallowed here by design — they surface in the store's error
// counters (and /metrics), not as job failures.
func (d *DiskCache) Store(key string, val any) {
	r, ok := val.(AppResult)
	if !ok {
		return
	}
	data, err := EncodeResult(r)
	if err != nil {
		return
	}
	_ = d.st.PutResult(key, data)
}
