package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"jetty/internal/engine"
	"jetty/internal/smp"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// Trace replay: any filter configuration can be evaluated against a
// stored reference stream instead of a live generator. A trace recorded
// from a run (RunAppCapturedCtx, `tracecat record`, or an upload to
// jettyd) replays bit-identically because the file holds exactly the
// sequence of references the machine steps, and the machine's stepping
// is a pure function of that sequence plus the configuration.

// TraceInput is a stored trace ready to replay: the raw file bytes plus
// the summary fields scheduling needs. Build one with LoadTrace.
type TraceInput struct {
	// Name labels results (the meta's app name, a filename, ...).
	Name string
	// Digest is the content address of Data (trace.Digest).
	Digest string
	// CPUs, Records and Compressed come from the file's header and
	// framing.
	CPUs       int
	Records    uint64
	Compressed bool
	// Data is the complete trace file.
	Data []byte
}

// LoadTrace validates raw trace-file bytes (header, framing, record
// count) and content-addresses them. name may be empty: the metadata's
// app name (or "trace") is used.
func LoadTrace(name string, data []byte) (TraceInput, error) {
	sum, err := trace.Summarize(bytes.NewReader(data))
	if err != nil {
		return TraceInput{}, err
	}
	if sum.Records == 0 {
		return TraceInput{}, fmt.Errorf("sim: trace holds no records")
	}
	digest, err := trace.Digest(bytes.NewReader(data))
	if err != nil {
		return TraceInput{}, err
	}
	if name == "" {
		name = sum.Meta.App
	}
	if name == "" {
		name = "trace"
	}
	return TraceInput{
		Name:       name,
		Digest:     digest,
		CPUs:       sum.CPUs,
		Records:    sum.Records,
		Compressed: sum.Compressed,
		Data:       data,
	}, nil
}

// TraceFingerprint is the content address of one replay run: a SHA-256
// over the trace digest and the canonical machine configuration. A
// replayed result is a pure function of those two values, so the
// fingerprint is a sound engine cache and deduplication key — two
// clients uploading byte-identical traces share one execution.
func TraceFingerprint(digest string, cfg smp.Config) string {
	b, err := json.Marshal(struct {
		Trace  string
		Config smp.Config
	}{digest, cfg})
	if err != nil {
		panic(fmt.Sprintf("sim: trace fingerprint encoding: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// pseudoSpec labels a replay's AppResult. A trace has no generator, so
// every Spec field except the name and reference count is zero (and
// MemoryBytes reports 0: a stored stream has no allocation table).
func (in TraceInput) pseudoSpec() workload.Spec {
	return workload.Spec{Name: in.Name, Accesses: in.Records}
}

// replayBatchRecords is the record-buffer size of the batched replay
// loop: large enough to amortize decode framing, small enough to stay
// cache-resident and keep cancellation latency low.
const replayBatchRecords = 8192

// replayBufKey keys the reusable replay record buffer in an engine
// worker's Scratch.
type replayBufKey struct{}

// replayBuf returns a replay record buffer, reusing the per-worker one
// when the run executes on an engine worker (engine.ScratchFrom).
func replayBuf(ctx context.Context) []trace.Rec {
	sc := engine.ScratchFrom(ctx)
	if sc == nil {
		return make([]trace.Rec, replayBatchRecords)
	}
	if buf, ok := sc.Get(replayBufKey{}).([]trace.Rec); ok {
		return buf
	}
	buf := make([]trace.Rec, replayBatchRecords)
	sc.Put(replayBufKey{}, buf)
	return buf
}

// RunTraceCtx replays a stored trace through the given machine, with the
// same cooperative cancellation and progress reporting as RunAppCtx. The
// machine must be at least as wide as the trace. Replaying a trace
// captured from a run on the same configuration reproduces that run's
// statistics exactly (TestTraceReplayMatchesDirect enforces it).
//
// The replay loop is batched: each JTRC chunk is decoded directly into a
// reusable record buffer (per engine worker when running on the engine)
// and stepped through the machine in recorded order, with no per-record
// Source indirection. Stepping in recorded order is exactly what the
// Source-driven round-robin path does for a round-robin recording, so
// the batching is invisible in the results.
func RunTraceCtx(ctx context.Context, in TraceInput, cfg smp.Config, report func(done uint64)) (AppResult, error) {
	return runTrace(ctx, in, cfg, SampleOptions{}, report)
}

// RunTraceSampledCtx is RunTraceCtx with an interval sampler attached:
// the replayed result carries a Timeline, exactly like a sampled
// generator run (the trace fixes the stream, so the timeline is as
// reproducible as the replay itself).
func RunTraceSampledCtx(ctx context.Context, in TraceInput, cfg smp.Config, opt SampleOptions, report func(done uint64)) (AppResult, error) {
	return runTrace(ctx, in, cfg, opt, report)
}

func runTrace(ctx context.Context, in TraceInput, cfg smp.Config, opt SampleOptions, report func(done uint64)) (AppResult, error) {
	if err := cfg.Validate(); err != nil {
		return AppResult{}, err
	}
	rd, err := trace.NewReader(bytes.NewReader(in.Data))
	if err != nil {
		return AppResult{}, err
	}
	if rd.CPUs() > cfg.CPUs {
		return AppResult{}, fmt.Errorf("sim: trace has %d cpus but the machine only %d", rd.CPUs(), cfg.CPUs)
	}
	sys := smp.New(cfg)
	if opt.enabled() {
		sm, err := opt.newSampler(cfg, in.Records)
		if err != nil {
			return AppResult{}, err
		}
		sys.SetSampler(sm)
	}
	buf := replayBuf(ctx)
	var done uint64
	for {
		if err := ctx.Err(); err != nil {
			return AppResult{}, err
		}
		n, err := rd.ReadBatch(buf)
		sys.StepBatch(buf[:n])
		done += uint64(n)
		if report != nil && n > 0 {
			report(done)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return AppResult{}, err
		}
	}
	if err := rd.Err(); err != nil {
		return AppResult{}, err
	}
	if got := sys.Refs(); got != in.Records {
		return AppResult{}, fmt.Errorf("sim: replayed %d of the trace's %d records", got, in.Records)
	}
	return finishRun(sys, in.pseudoSpec(), cfg)
}

// TraceTask wraps one replay as an engine task, content-addressed by
// TraceFingerprint and reporting progress in records.
func TraceTask(in TraceInput, cfg smp.Config) engine.Task {
	return engine.Task{
		Key:   TraceFingerprint(in.Digest, cfg),
		Kind:  KindTrace,
		Total: in.Records,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			res, err := RunTraceCtx(ctx, in, cfg, report)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// SampledTraceTask wraps one sampled replay as an engine task (key
// extended with the interval, like SampledTask).
func SampledTraceTask(in TraceInput, cfg smp.Config, opt SampleOptions) engine.Task {
	return engine.Task{
		Key:   SampledKey(TraceFingerprint(in.Digest, cfg), opt.Interval),
		Kind:  KindTrace,
		Total: in.Records,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			res, err := RunTraceSampledCtx(ctx, in, cfg, opt, report)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// SubmitTrace schedules one replay and returns its job handle (the
// jettyd service's trace experiments run through here).
func (r *Runner) SubmitTrace(in TraceInput, cfg smp.Config) *engine.Job {
	return r.eng.Submit(TraceTask(in, cfg))
}

// SubmitTraceSampled schedules one sampled replay.
func (r *Runner) SubmitTraceSampled(in TraceInput, cfg smp.Config, opt SampleOptions) *engine.Job {
	return r.eng.Submit(SampledTraceTask(in, cfg, opt))
}

// RunTrace replays a trace through the engine and waits for it.
func (r *Runner) RunTrace(ctx context.Context, in TraceInput, cfg smp.Config) (AppResult, error) {
	return waitResult(ctx, r.SubmitTrace(in, cfg))
}
