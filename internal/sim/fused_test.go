package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/trace"
)

// fusedTestBanks is a small multi-member bank mix: single filters, a
// multi-filter bank, and a duplicate of an earlier bank (members may
// repeat in a sweep's "each" mode across machines).
func fusedTestBanks() [][]jetty.Config {
	return [][]jetty.Config{
		{jetty.MustParse("EJ-32x4")},
		{jetty.MustParse("VEJ-32x4-8"), jetty.MustParse("IJ-10x4x7")},
		{jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")},
		{jetty.MustParse("EJ-32x4")},
	}
}

// TestFusedMatchesSeparateRuns is the sim-layer half of the fused
// bit-identity claim: one wide pass projected per member equals N
// separate runs, field for field, with and without sampling.
func TestFusedMatchesSeparateRuns(t *testing.T) {
	sp := quickSpec(t)
	base := smp.PaperConfig(4)
	banks := fusedTestBanks()

	for _, interval := range []uint64{0, 4096} {
		opt := SampleOptions{Interval: interval}
		fused, err := RunAppFusedCtx(context.Background(), sp, base, banks, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(fused) != len(banks) {
			t.Fatalf("interval %d: %d results for %d banks", interval, len(fused), len(banks))
		}
		for i, bank := range banks {
			var sep AppResult
			if interval > 0 {
				sep, err = RunAppSampledCtx(context.Background(), sp, base.WithFilters(bank...), opt, nil)
			} else {
				sep, err = RunAppCtx(context.Background(), sp, base.WithFilters(bank...), nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fused[i], sep) {
				t.Errorf("interval %d: member %d diverges from its separate run", interval, i)
			}
		}
	}
}

// TestFusedTraceMatchesSeparateReplays pins the same identity for the
// stored-trace replay path.
func TestFusedTraceMatchesSeparateReplays(t *testing.T) {
	sp := quickSpec(t)
	base := smp.PaperConfig(4)

	// Record a trace from a filterless run, then replay it fused.
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, base.CPUs, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAppCapturedCtx(context.Background(), sp, base, tw, nil); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := LoadTrace(sp.Name, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	banks := fusedTestBanks()
	opt := SampleOptions{Interval: 4096}
	fused, err := RunTraceFusedCtx(context.Background(), in, base, banks, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, bank := range banks {
		sep, err := RunTraceSampledCtx(context.Background(), in, base.WithFilters(bank...), opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[i], sep) {
			t.Errorf("member %d diverges from its separate replay", i)
		}
	}
}

// TestFusedResultsAreIsolated guards the projection's allocation
// discipline: mutating one member's slices must not bleed into another
// member or a second projection of the same run.
func TestFusedResultsAreIsolated(t *testing.T) {
	sp := quickSpec(t)
	base := smp.PaperConfig(4)
	banks := [][]jetty.Config{
		{jetty.MustParse("EJ-32x4")},
		{jetty.MustParse("EJ-32x4")},
	}
	opt := SampleOptions{Interval: 4096}
	fused, err := RunAppFusedCtx(context.Background(), sp, base, banks, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused[0], fused[1]) {
		t.Fatal("identical banks must project identically")
	}
	fused[0].FilterCounts[0].Filtered++
	fused[0].Coverage[0] = -1
	fused[0].Timeline.Windows[0].Filters[0].Probes++
	fused[0].Bus.RemoteHits[0]++
	if reflect.DeepEqual(fused[0], fused[1]) {
		t.Fatal("members share backing arrays")
	}
}
