package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// testConfig is a small filter bank on the paper's machine.
func testConfig(cpus int) smp.Config {
	return smp.PaperConfig(cpus).WithFilters(
		jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)"),
		jetty.MustParse("EJ-16x2"),
	)
}

func TestFingerprintStability(t *testing.T) {
	sp := quickSpec(t)
	cfg := testConfig(4)

	// Same logical inputs → same key, even across distinct allocations of
	// the pointered filter configs.
	again := smp.PaperConfig(4).WithFilters(
		jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)"),
		jetty.MustParse("EJ-16x2"),
	)
	if Fingerprint(sp, cfg) != Fingerprint(sp, again) {
		t.Error("equal configurations must have equal fingerprints")
	}

	// Any run-relevant change must change the key.
	variants := []struct {
		name string
		sp   workload.Spec
		cfg  smp.Config
	}{
		{"scale", sp.Scale(0.5), cfg},
		{"cpus", sp, testConfig(8)},
		{"filters", sp, smp.PaperConfig(4).WithFilters(jetty.MustParse("EJ-32x4"))},
		{"l2", sp, func() smp.Config { c := testConfig(4); c.L2.SizeBytes = 2 << 20; return c }()},
		{"app", func() workload.Spec { s, _ := workload.ByName("Ocean"); return s }(), cfg},
	}
	base := Fingerprint(sp, cfg)
	for _, v := range variants {
		if Fingerprint(v.sp, v.cfg) == base {
			t.Errorf("%s change did not change the fingerprint", v.name)
		}
	}
}

func TestRunAppCtxMatchesRunApp(t *testing.T) {
	sp := quickSpec(t)
	cfg := testConfig(4)

	serial, err := RunApp(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []uint64
	chunked, err := RunAppCtx(context.Background(), sp, cfg, func(done uint64) {
		reports = append(reports, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, chunked) {
		t.Fatal("chunked run diverged from the serial run")
	}
	if len(reports) == 0 || reports[len(reports)-1] != sp.Accesses {
		t.Errorf("progress reports %v must end at %d", reports, sp.Accesses)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] <= reports[i-1] {
			t.Errorf("progress not monotonic: %v", reports)
		}
	}
}

// TestParallelSuiteMatchesSerial is the acceptance test: the engine path
// must return results byte-identical to the serial implementation. Run
// it under -race to also check the pool's memory discipline.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	const scale = 0.02
	cfg := testConfig(4)

	serial, err := RunSuiteSerial(cfg, scale)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(engine.New(engine.Options{}))
	defer r.Engine().Close()
	parallel, err := r.RunSuite(context.Background(), cfg, scale)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel suite diverged from serial suite")
	}
	sb, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(pb) {
		t.Fatal("parallel suite not byte-identical to serial suite")
	}
}

func TestRunnerCancellation(t *testing.T) {
	r := NewRunner(engine.New(engine.Options{Workers: 1}))
	defer r.Engine().Close()

	// A deliberately long run: cancellation must cut it short at the next
	// chunk boundary rather than simulating all 50M references.
	sp := quickSpec(t)
	sp.Accesses = 50_000_000
	job := r.Submit(sp, testConfig(4))

	for job.Status().State == engine.Queued {
		time.Sleep(time.Millisecond)
	}
	job.Cancel()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := job.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := job.Status(); st.Done >= sp.Accesses {
		t.Errorf("run completed despite cancellation (done=%d)", st.Done)
	}
}

func TestRunAppAbandonedWaitReleasesWorker(t *testing.T) {
	r := NewRunner(engine.New(engine.Options{Workers: 1}))
	defer r.Engine().Close()

	long := quickSpec(t)
	long.Accesses = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunApp(ctx, long, testConfig(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The abandoned run must have been released (its only handle gone),
	// freeing the single worker for new work promptly.
	done := make(chan error, 1)
	go func() {
		_, err := r.RunApp(context.Background(), quickSpec(t), testConfig(4))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker still occupied by the abandoned run")
	}
}

func TestIdenticalInflightJobsCoalesce(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	r := NewRunner(eng)

	// Occupy the only worker so the two identical submissions below are
	// both pending when the second one arrives.
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	blocker := eng.Submit(engine.Task{
		Key: "blocker",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			started <- struct{}{}
			<-release
			return nil, nil
		},
	})
	<-started

	sp := quickSpec(t)
	cfg := testConfig(4)
	j1 := r.Submit(sp, cfg)
	j2 := r.Submit(sp, cfg)
	close(release)

	res1, err1 := j1.Wait(context.Background())
	res2, err2 := j2.Wait(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Error("coalesced submissions returned different results")
	}
	blocker.Wait(context.Background())

	st := eng.Stats()
	if st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1 (identical in-flight jobs must dedup)", st.Coalesced)
	}

	// A third submission after completion is a pure cache hit.
	j3 := r.Submit(sp, cfg)
	res3, err := j3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j3.Status().CacheHit {
		t.Error("repeat submission should be served from the cache")
	}
	if !reflect.DeepEqual(res1, res3) {
		t.Error("cached result differs from the computed one")
	}
}

func TestRunnerResultsAreIsolated(t *testing.T) {
	r := NewRunner(engine.New(engine.Options{}))
	defer r.Engine().Close()

	sp := quickSpec(t)
	cfg := testConfig(4)
	a, err := r.RunApp(context.Background(), sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating one caller's result must not poison the cache.
	a.Coverage[0] = -1
	a.FilterNames[0] = "tampered"
	b, err := r.RunApp(context.Background(), sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Coverage[0] == -1 || b.FilterNames[0] == "tampered" {
		t.Error("cache returned a result aliased to a previous caller's slices")
	}
}

func TestRunAppsReportsAppInError(t *testing.T) {
	r := NewRunner(engine.New(engine.Options{}))
	defer r.Engine().Close()

	bad := quickSpec(t)
	bad.Accesses = 0 // fails validation inside the task
	_, err := r.RunApps(context.Background(), []workload.Spec{bad}, testConfig(4))
	if err == nil {
		t.Fatal("invalid spec must fail")
	}
	if want := "sim: Lu:"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q should name the app (%q)", err, want)
	}
}
