package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"jetty/internal/energy"
	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/smp"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// The paper's evaluation is embarrassingly parallel: one independent,
// fully seeded simulation pass per (application, machine) pair. This
// file submits those passes to an engine.Engine worker pool instead of
// running them serially. Each pass is still the exact single-threaded
// simulation of RunApp — only scheduling changes — so results are
// bit-identical to the serial path (TestParallelSuiteMatchesSerial
// asserts it under the race detector).

// Fingerprint returns the content address of one app run: a SHA-256 over
// the canonical encoding of the workload spec and machine configuration.
// Everything a run's result depends on is in those two values (every
// generator is seeded, the interleaving is fixed), so the fingerprint is
// a sound cache and deduplication key.
func Fingerprint(sp workload.Spec, cfg smp.Config) string {
	b, err := json.Marshal(struct {
		Spec   workload.Spec
		Config smp.Config
	}{sp, cfg})
	if err != nil {
		// Spec and Config are plain data; encoding cannot fail.
		panic(fmt.Sprintf("sim: fingerprint encoding: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// progressChunk is roughly how many references run between progress
// reports and cancellation checks. The actual chunk is rounded down to a
// multiple of the CPU count so every chunk ends exactly on a round-robin
// cycle boundary — the run decomposition the serial path would also pass
// through, keeping chunked execution bit-identical.
const progressChunk = 1 << 16

// runChunked drives sys over src for up to accesses references in
// interleaving-preserving chunks: every chunk ends exactly on a
// round-robin cycle boundary, the decomposition the uninterrupted path
// would also pass through, so chunking never perturbs determinism. It
// stops early (without error) if the source runs dry — replayed traces
// are finite even when the budget says otherwise.
func runChunked(ctx context.Context, sys *smp.System, src trace.Source, accesses uint64, report func(done uint64)) error {
	ncpu := src.CPUs()
	if ncpu > sys.Config().CPUs {
		ncpu = sys.Config().CPUs
	}
	chunk := uint64(progressChunk)
	chunk -= chunk % uint64(ncpu)
	if chunk == 0 {
		chunk = uint64(ncpu)
	}

	var done uint64
	for done < accesses {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := chunk
		if rem := accesses - done; rem < n {
			n = rem
		}
		ran := sys.Run(src, n)
		done += ran
		if report != nil {
			report(done)
		}
		if ran == 0 {
			return nil
		}
	}
	return nil
}

// RunAppCtx is RunApp with cooperative cancellation and progress
// reporting: the simulation runs in interleaving-preserving chunks,
// calling report (if non-nil) with the references completed so far and
// returning ctx.Err() promptly after cancellation. Results are
// bit-identical to RunApp.
func RunAppCtx(ctx context.Context, sp workload.Spec, cfg smp.Config, report func(done uint64)) (AppResult, error) {
	return runApp(ctx, sp, cfg, nil, SampleOptions{}, report)
}

// RunAppCapturedCtx is RunAppCtx with the capture hook attached: every
// reference the simulation consumes is also recorded into tw, in
// exactly the consumed order, so replaying the resulting trace
// (RunTraceCtx) reproduces this run's statistics identically. The
// caller owns tw and must Close it after the run to finish the file.
func RunAppCapturedCtx(ctx context.Context, sp workload.Spec, cfg smp.Config, tw *trace.Writer, report func(done uint64)) (AppResult, error) {
	return runApp(ctx, sp, cfg, tw, SampleOptions{}, report)
}

// SampleOptions attaches interval sampling to a run.
type SampleOptions struct {
	// Interval is the timeline window width in accesses (0 disables
	// sampling; otherwise at least metrics.MinInterval).
	Interval uint64
	// OnWindow, if non-nil, streams each window as it is emitted, on the
	// simulation goroutine. The pointer is borrowed per boundary — copy
	// or encode before returning (the jettyd live stream does).
	OnWindow func(*metrics.Window)
}

// enabled reports whether sampling is requested.
func (o SampleOptions) enabled() bool { return o.Interval > 0 }

// newSampler sizes a sampler for a run of total references (0 when the
// length is unknown) so steady-state emission never reallocates.
func (o SampleOptions) newSampler(cfg smp.Config, total uint64) (*metrics.Sampler, error) {
	if o.Interval < metrics.MinInterval {
		return nil, fmt.Errorf("sim: sampling interval %d below minimum %d", o.Interval, metrics.MinInterval)
	}
	capacity := 0
	if total > 0 {
		capacity = int(total/o.Interval) + 2
	}
	return metrics.NewSampler(metrics.Config{
		Interval: o.Interval,
		Filters:  len(cfg.Filters),
		Capacity: capacity,
		OnWindow: o.OnWindow,
	}), nil
}

// RunAppSampledCtx is RunAppCtx with an interval sampler attached: the
// result carries a Timeline whose windows sum exactly to the aggregate
// metrics. Sampling is observation only — every aggregate is
// bit-identical to the unsampled run (TestSampledRunMatchesUnsampled).
func RunAppSampledCtx(ctx context.Context, sp workload.Spec, cfg smp.Config, opt SampleOptions, report func(done uint64)) (AppResult, error) {
	return runApp(ctx, sp, cfg, nil, opt, report)
}

// runApp is the shared generator-driven path, optionally teeing the
// reference stream into a trace writer and/or sampling a timeline.
func runApp(ctx context.Context, sp workload.Spec, cfg smp.Config, tw *trace.Writer, opt SampleOptions, report func(done uint64)) (AppResult, error) {
	if err := sp.Validate(); err != nil {
		return AppResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return AppResult{}, err
	}
	sys := smp.New(cfg)
	if opt.enabled() {
		sm, err := opt.newSampler(cfg, sp.Accesses)
		if err != nil {
			return AppResult{}, err
		}
		sys.SetSampler(sm)
	}
	var src trace.Source = sp.Source(cfg.CPUs)
	var cp *trace.Capture
	if tw != nil {
		cp = trace.NewCapture(src, tw)
		src = cp
	}
	if err := runChunked(ctx, sys, src, sp.Accesses, report); err != nil {
		return AppResult{}, err
	}
	if cp != nil {
		if err := cp.Err(); err != nil {
			return AppResult{}, fmt.Errorf("sim: recording trace: %w", err)
		}
	}
	return finishRun(sys, sp, cfg)
}

// Task wraps one app run as an engine task, content-addressed by
// Fingerprint and reporting progress in references.
func Task(sp workload.Spec, cfg smp.Config) engine.Task {
	return engine.Task{
		Key:   Fingerprint(sp, cfg),
		Kind:  KindWorkload,
		Total: sp.Accesses,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			res, err := RunAppCtx(ctx, sp, cfg, report)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// SampledKey extends a run's content address with the sampling interval:
// a sampled result carries a payload (the timeline) an unsampled run of
// the same (spec, config) does not, so they must not share a cache slot.
// The streaming hook is deliberately NOT part of the key — coalesced
// submitters share one execution, and only the first submitter's
// OnWindow observes it live (late subscribers replay from the retained
// timeline; the jettyd live stream does exactly that).
func SampledKey(base string, interval uint64) string {
	return fmt.Sprintf("%s#tl%d", base, interval)
}

// SampledTask wraps one sampled app run as an engine task.
func SampledTask(sp workload.Spec, cfg smp.Config, opt SampleOptions) engine.Task {
	return engine.Task{
		Key:   SampledKey(Fingerprint(sp, cfg), opt.Interval),
		Kind:  KindWorkload,
		Total: sp.Accesses,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			res, err := RunAppSampledCtx(ctx, sp, cfg, opt, report)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// Runner executes app runs on an engine worker pool.
type Runner struct {
	eng *engine.Engine
}

// NewRunner wraps an engine. The caller keeps ownership (and the Close
// responsibility) of the engine.
func NewRunner(e *engine.Engine) *Runner { return &Runner{eng: e} }

// Engine returns the underlying engine (for stats and job submission).
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Submit schedules one app run and returns its job handle. The job's
// result is an AppResult; prefer RunApp/RunApps unless the caller needs
// asynchronous status (the jettyd service does).
func (r *Runner) Submit(sp workload.Spec, cfg smp.Config) *engine.Job {
	return r.eng.Submit(Task(sp, cfg))
}

// SubmitSampled schedules one sampled app run (timeline attached to the
// result). opt.Interval must be valid — the task fails otherwise.
func (r *Runner) SubmitSampled(sp workload.Spec, cfg smp.Config, opt SampleOptions) *engine.Job {
	return r.eng.Submit(SampledTask(sp, cfg, opt))
}

// RunApp runs one application through the engine and waits for it.
func (r *Runner) RunApp(ctx context.Context, sp workload.Spec, cfg smp.Config) (AppResult, error) {
	return waitResult(ctx, r.Submit(sp, cfg))
}

// RunApps runs one simulation per spec concurrently and returns the
// results in spec order. On error the remaining jobs are released.
func (r *Runner) RunApps(ctx context.Context, specs []workload.Spec, cfg smp.Config) ([]AppResult, error) {
	jobs := make([]*engine.Job, len(specs))
	for i, sp := range specs {
		jobs[i] = r.Submit(sp, cfg)
	}
	out := make([]AppResult, len(specs))
	var firstErr error
	for i, j := range jobs {
		if firstErr != nil {
			j.Cancel()
			continue
		}
		res, err := waitResult(ctx, j)
		if err != nil {
			firstErr = fmt.Errorf("sim: %s: %w", specs[i].Name, err)
			continue
		}
		out[i] = res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RunSuite runs the whole benchmark suite (every Table 2 application at
// the given access-budget scale) on the engine.
func (r *Runner) RunSuite(ctx context.Context, cfg smp.Config, scale float64) ([]AppResult, error) {
	specs := workload.Specs()
	for i := range specs {
		specs[i] = specs[i].Scale(scale)
	}
	return r.RunApps(ctx, specs, cfg)
}

// PaperSuite runs the suite on the paper's machine with the full figure
// filter bank attached.
func (r *Runner) PaperSuite(ctx context.Context, cpus int, scale float64) ([]AppResult, smp.Config, error) {
	cfg, err := paperSuiteConfig(cpus, false)
	if err != nil {
		return nil, smp.Config{}, err
	}
	results, err := r.RunSuite(ctx, cfg, scale)
	return results, cfg, err
}

// PaperSuiteNSB is PaperSuite on the non-subblocked machine.
func (r *Runner) PaperSuiteNSB(ctx context.Context, cpus int, scale float64) ([]AppResult, smp.Config, error) {
	cfg, err := paperSuiteConfig(cpus, true)
	if err != nil {
		return nil, smp.Config{}, err
	}
	results, err := r.RunSuite(ctx, cfg, scale)
	return results, cfg, err
}

// L2Sensitivity sweeps L2 size and associativity concurrently (see the
// package-level L2Sensitivity for the experiment's rationale).
func (r *Runner) L2Sensitivity(ctx context.Context, appName string, scale float64) ([]SensitivityPoint, error) {
	sp, err := workload.ByName(appName)
	if err != nil {
		return nil, err
	}
	sp = sp.Scale(scale)
	best := jetty.MustParse(bestHybridName)
	tech := energy.Tech180()

	type point struct {
		size, assoc int
		cfg         smp.Config
		job         *engine.Job
	}
	var points []point
	for _, size := range []int{1 << 19, 1 << 20, 2 << 20, 4 << 20} {
		for _, assoc := range []int{4, 8} {
			cfg := smp.PaperConfig(4).WithFilters(best)
			cfg.L2.SizeBytes = size
			cfg.L2.Assoc = assoc
			points = append(points, point{size: size, assoc: assoc, cfg: cfg, job: r.Submit(sp, cfg)})
		}
	}

	out := make([]SensitivityPoint, 0, len(points))
	var firstErr error
	for _, p := range points {
		if firstErr != nil {
			p.job.Cancel()
			continue
		}
		res, err := waitResult(ctx, p.job)
		if err != nil {
			firstErr = err
			continue
		}
		cov, err := res.CoverageOf(best.Name())
		if err != nil {
			firstErr = err
			continue
		}
		red := EnergyReductions(res, p.cfg, tech, energy.SerialTagData)
		out = append(out, SensitivityPoint{
			L2Bytes: p.size, Assoc: p.assoc, Coverage: cov, OverAll: red[0].OverAll,
		})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// waitResult waits for one job and returns a defensive copy of its
// AppResult (engine-cached results are shared between submitters). On
// any error — including an abandoned Wait when ctx expires — it releases
// the caller's handle: without that, a still-running execution would
// keep burning a worker with no remaining consumer.
func waitResult(ctx context.Context, j *engine.Job) (AppResult, error) {
	v, err := j.Wait(ctx)
	if err != nil {
		j.Cancel()
		return AppResult{}, err
	}
	return v.(AppResult).Clone(), nil
}

// defaultRunner is the process-wide shared runner backing the package's
// serial-looking entry points (RunSuite, PaperSuite, ...). One engine
// sized to GOMAXPROCS is enough for any number of callers: it is the
// concurrency cap.
var (
	defaultMu     sync.Mutex
	defaultRunner *Runner
)

// DefaultRunner returns the shared runner, creating it on first use.
// Callers that need their own pool size build one with NewRunner
// (cmd/paper does, for its -workers flag).
func DefaultRunner() *Runner {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner == nil {
		defaultRunner = NewRunner(engine.New(engine.Options{}))
	}
	return defaultRunner
}

// Task kinds: the telemetry label (engine.Task.Kind) each submission
// path carries, so jettyd's per-kind latency histograms and slow-job
// logs distinguish generated runs from trace replays and sweep cells.
const (
	KindWorkload = "workload" // generator-driven app run
	KindTrace    = "trace"    // stored-trace replay
	KindSweep    = "sweep"    // sweep cell (set by internal/sweep)
	KindFused    = "fused"    // fused multi-bank group run (one pass, N cells)
)
