package sim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"jetty/internal/workload"
)

// The timeline golden pins the *time-resolved* paper metrics the same
// way TestPaperMetricsGolden pins the end-of-run aggregates: per-window
// coverage and energy for the two phased workloads — the library entries
// whose whole point is time-varying behaviour — against one
// representative configuration per JETTY variant (the same goldenConfigs
// bank). Every value is an exact float64 compared with ==; re-baseline
// with
//
//	go test ./internal/sim -run TimelineGolden -update
//
// and review the diff like any other behavior change. A drift here with
// TestPaperMetricsGolden green means the *dynamics* changed while the
// totals conserved — exactly the regression class aggregates cannot see.

// goldenTimelineApps are the phased scenarios the timeline golden pins.
var goldenTimelineApps = []string{"PhasedWebServer", "PhasedOLTP"}

// goldenTimelineInterval is sized so the golden runs (goldenScale of the
// phased budgets: 75 000 references) emit ~18 windows — enough to see
// every phase transition, small enough to review by hand.
const goldenTimelineInterval = 4096

type goldenWindow struct {
	StartRef    uint64    `json:"start_ref"`
	EndRef      uint64    `json:"end_ref"`
	Snoops      uint64    `json:"snoops"`
	SnoopMisses uint64    `json:"snoop_misses"`
	EnergyAll   float64   `json:"energy_all_j"`
	EnergySnoop float64   `json:"energy_snoop_j"`
	Coverage    []float64 `json:"coverage"` // per goldenConfigs filter
}

type goldenTimeline struct {
	Workload string         `json:"workload"`
	Interval uint64         `json:"interval"`
	Windows  []goldenWindow `json:"windows"`
}

const goldenTimelinePath = "testdata/timelines.json"

// computeGoldenTimelines runs the phased workloads sampled, serially on
// the reference path (no engine, no cache).
func computeGoldenTimelines(t *testing.T) []goldenTimeline {
	t.Helper()
	cfg, err := PaperBankConfig(4, false, goldenConfigs)
	if err != nil {
		t.Fatal(err)
	}
	var out []goldenTimeline
	for _, name := range goldenTimelineApps {
		sp, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAppSampledCtx(context.Background(), sp.Scale(goldenScale), cfg,
			SampleOptions{Interval: goldenTimelineInterval}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tl := res.Timeline
		if tl == nil {
			t.Fatalf("%s: sampled run returned no timeline", name)
		}
		g := goldenTimeline{Workload: name, Interval: tl.Interval}
		for i := range tl.Windows {
			w := &tl.Windows[i]
			gw := goldenWindow{
				StartRef:    w.StartRef,
				EndRef:      w.EndRef,
				Snoops:      w.Counts.Snoops,
				SnoopMisses: w.Counts.SnoopMisses,
				EnergyAll:   w.Energy.Total(),
				EnergySnoop: w.Energy.SnoopTotal(),
			}
			for fi := range tl.FilterNames {
				gw.Coverage = append(gw.Coverage, w.Coverage(fi))
			}
			g.Windows = append(g.Windows, gw)
		}
		out = append(out, g)
	}
	return out
}

func TestTimelineGolden(t *testing.T) {
	got := computeGoldenTimelines(t)
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenTimelinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTimelinePath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d timelines to %s", len(got), goldenTimelinePath)
	}
	raw, err := os.ReadFile(goldenTimelinePath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run TimelineGolden -update` to baseline)", err)
	}
	var want []goldenTimeline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("computed %d timelines, golden file has %d — re-baseline with -update", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Workload != w.Workload || g.Interval != w.Interval {
			t.Errorf("timeline %d is %s@%d, golden says %s@%d — re-baseline with -update",
				i, g.Workload, g.Interval, w.Workload, w.Interval)
			continue
		}
		if len(g.Windows) != len(w.Windows) {
			t.Errorf("%s: %d windows, golden has %d", g.Workload, len(g.Windows), len(w.Windows))
			continue
		}
		for wi := range g.Windows {
			gw, ww := g.Windows[wi], w.Windows[wi]
			same := gw.StartRef == ww.StartRef && gw.EndRef == ww.EndRef &&
				gw.Snoops == ww.Snoops && gw.SnoopMisses == ww.SnoopMisses &&
				gw.EnergyAll == ww.EnergyAll && gw.EnergySnoop == ww.EnergySnoop &&
				len(gw.Coverage) == len(ww.Coverage)
			if same {
				for fi := range gw.Coverage {
					if gw.Coverage[fi] != ww.Coverage[fi] {
						same = false
					}
				}
			}
			if !same {
				t.Errorf("%s window %d drifted:\n got %+v\nwant %+v", g.Workload, wi, gw, ww)
			}
		}
	}
}

// TestTimelineGoldenSeesPhases guards the golden inputs themselves: the
// pinned runs must actually exercise time-varying behaviour — a phased
// workload whose windows all look alike would pin nothing dynamic. The
// warmup-era windows and the steady-era windows must differ materially
// in snoop activity.
func TestTimelineGoldenSeesPhases(t *testing.T) {
	for _, g := range computeGoldenTimelines(t) {
		if len(g.Windows) < 6 {
			t.Fatalf("%s: only %d windows; the golden cannot show dynamics", g.Workload, len(g.Windows))
		}
		third := len(g.Windows) / 3
		var early, late uint64
		for _, w := range g.Windows[:third] {
			early += w.Snoops
		}
		for _, w := range g.Windows[len(g.Windows)-third:] {
			late += w.Snoops
		}
		if early == 0 || late == 0 {
			t.Fatalf("%s: a run era saw no snoops (early %d, late %d)", g.Workload, early, late)
		}
		ratio := float64(late) / float64(early)
		if ratio > 0.67 && ratio < 1.5 {
			t.Errorf("%s: early/late snoop activity nearly identical (ratio %.2f) — phases not visible",
				g.Workload, ratio)
		}
	}
}
