package sim

import (
	"testing"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/smp"
)

func TestLatencyArithmetic(t *testing.T) {
	p := PaperLatency()
	counts := energy.Counts{Snoops: 1000, LocalReads: 400, LocalWrites: 100}
	fc := energy.FilterCounts{Probes: 1000, Filtered: 750}
	r := Latency(counts, fc, p)

	if r.BaseSnoopResponse != 12 {
		t.Errorf("base = %v", r.BaseSnoopResponse)
	}
	// 750 snoops at 0.5 cycles + 250 at 12.5 = (375 + 3125)/1000 = 3.5.
	if r.WithSnoopResponse != 3.5 {
		t.Errorf("with = %v, want 3.5", r.WithSnoopResponse)
	}
	// The §2.2 claim: the serial penalty is a small fraction of a bus cycle.
	if r.WorstCasePenaltyBusCycles >= 0.25 {
		t.Errorf("worst-case penalty %v bus cycles; paper expects a small fraction", r.WorstCasePenaltyBusCycles)
	}
	// 750 of 1500 total tag accesses removed.
	if r.TagPortRelief != 0.5 {
		t.Errorf("relief = %v, want 0.5", r.TagPortRelief)
	}
}

func TestLatencyDegenerateInputs(t *testing.T) {
	r := Latency(energy.Counts{}, energy.FilterCounts{}, PaperLatency())
	if r.WithSnoopResponse != 0 || r.TagPortRelief != 0 {
		t.Errorf("zero-snoop run should produce zero report: %+v", r)
	}
	// Filtered beyond snoops clamps.
	r = Latency(energy.Counts{Snoops: 10}, energy.FilterCounts{Filtered: 100}, PaperLatency())
	if r.WithSnoopResponse != 0.5 {
		t.Errorf("full filtering should answer at JETTY latency, got %v", r.WithSnoopResponse)
	}
}

func TestLatencyEndToEnd(t *testing.T) {
	best := jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")
	cfg := smp.PaperConfig(4).WithFilters(best)
	res, err := RunApp(quickSpec(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := LatencyOf(res, best.Name(), PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if r.WithSnoopResponse >= r.BaseSnoopResponse {
		t.Errorf("filtering should cut mean snoop response: %v vs %v",
			r.WithSnoopResponse, r.BaseSnoopResponse)
	}
	if r.TagPortRelief <= 0 {
		t.Error("no tag-port relief measured")
	}
	if _, err := LatencyOf(res, "nope", PaperLatency()); err == nil {
		t.Error("unknown filter should error")
	}
}
