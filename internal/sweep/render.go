package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jetty/internal/tables"
)

// Renderers for the three consumer shapes: CSV for spreadsheets and
// plotting scripts, JSON for programs, markdown for documents (the
// EXPERIMENTS.md table style), plus an aligned terminal table.

// WriteMetricsCSV writes the raw per-(cell, filter) metrics, one row
// each — the sweep's full resolution, nothing aggregated away.
func WriteMetricsCSV(w io.Writer, metrics []Metric) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "machine", "filter", "repeat"}
	for _, c := range Columns {
		header = append(header, c.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range metrics {
		row := []string{m.Workload, m.Machine, m.Filter, strconv.Itoa(m.Repeat)}
		for _, c := range Columns {
			row = append(row, formatFloat(c.Of(m)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGroupsCSV writes aggregated rows: the group labels, then
// mean/min/max per column.
func WriteGroupsCSV(w io.Writer, groups []Group, axes []Axis) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(axes)+3*len(Columns)+1)
	for _, a := range axes {
		header = append(header, string(a))
	}
	header = append(header, "n")
	for _, c := range Columns {
		header = append(header, c.Name+" mean", c.Name+" min", c.Name+" max")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range groups {
		row := append([]string(nil), g.Labels...)
		n := 0
		if len(g.Columns) > 0 {
			n = g.Columns[0].N
		}
		row = append(row, strconv.Itoa(n))
		for _, st := range g.Columns {
			row = append(row, formatFloat(st.Mean), formatFloat(st.Min), formatFloat(st.Max))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the full result (spec, cells, metrics) as indented
// JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Markdown renders aggregated groups as a GitHub-style markdown table:
// one row per group, columns as mean (min–max spread shown when the
// group holds more than one sample).
func Markdown(title string, groups []Group, axes []Axis) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "### %s\n\n", title)
	}
	for _, a := range axes {
		fmt.Fprintf(&b, "| %s ", a)
	}
	for _, c := range Columns {
		fmt.Fprintf(&b, "| %s ", c.Name)
	}
	b.WriteString("|\n")
	for range axes {
		b.WriteString("|---")
	}
	for range Columns {
		b.WriteString("|---")
	}
	b.WriteString("|\n")
	for _, g := range groups {
		for _, l := range g.Labels {
			fmt.Fprintf(&b, "| %s ", l)
		}
		for _, st := range g.Columns {
			fmt.Fprintf(&b, "| %s ", pctCell(st))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Report renders aggregated groups as an aligned terminal table (the
// cmd/jettysweep default; the same shape the paper binaries print).
func Report(title string, groups []Group, axes []Axis) string {
	headers := make([]string, 0, len(axes)+len(Columns)+1)
	for _, a := range axes {
		headers = append(headers, string(a))
	}
	headers = append(headers, "n")
	for _, c := range Columns {
		headers = append(headers, c.Name)
	}
	t := tables.New(title, headers...)
	for _, g := range groups {
		row := make([]any, 0, len(headers))
		for _, l := range g.Labels {
			row = append(row, l)
		}
		n := 0
		if len(g.Columns) > 0 {
			n = g.Columns[0].N
		}
		row = append(row, n)
		for _, st := range g.Columns {
			row = append(row, pctCell(st))
		}
		t.Row(row...)
	}
	return t.String()
}

// pctCell formats one Stats as "mean%" or "mean% [min–max]" when the
// group has spread to show.
func pctCell(st Stats) string {
	if st.N <= 1 || st.Min == st.Max {
		return tables.Pct(st.Mean)
	}
	return fmt.Sprintf("%s [%s–%s]", tables.Pct(st.Mean), tables.Pct(st.Min), tables.Pct(st.Max))
}

// formatFloat is the CSV float encoding: shortest representation that
// round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
