package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"strings"
	"testing"

	"jetty/internal/energy"
	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// testRunner returns a runner on a private engine, closed with the test.
func testRunner(t *testing.T) *sim.Runner {
	t.Helper()
	eng := engine.New(engine.Options{})
	t.Cleanup(eng.Close)
	return sim.NewRunner(eng)
}

// acceptanceSpec is the ISSUE's acceptance shape: 2 workloads × 2
// machines × 3 filters, at a test-friendly scale.
func acceptanceSpec() Spec {
	return Spec{
		Name:      "acceptance",
		Workloads: []string{"Lu", "ch"},
		Machines: []Machine{
			{},
			{CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2},
		},
		Filters: []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"},
		Scale:   0.02,
	}
}

// metricKey indexes a metric set by its axis coordinates.
func metricKey(workloadName, machine, filter string, repeat int) string {
	return workloadName + "|" + machine + "|" + filter + "|" + string(rune('0'+repeat))
}

func metricMap(t *testing.T, ms []Metric) map[string]Metric {
	t.Helper()
	out := map[string]Metric{}
	for _, m := range ms {
		k := metricKey(m.Workload, m.Machine, m.Filter, m.Repeat)
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate metric %s", k)
		}
		out[k] = m
	}
	return out
}

// TestSweepMatchesIndividualRuns is the acceptance criterion: every
// aggregated number the sweep reports equals running that cell
// individually through the serial reference path.
func TestSweepMatchesIndividualRuns(t *testing.T) {
	spec := acceptanceSpec()
	res, err := Run(context.Background(), testRunner(t), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * 2 // bank mode: one cell per (workload, machine)
	if len(res.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(res.Cells), wantCells)
	}
	if len(res.Metrics) != wantCells*3 {
		t.Fatalf("%d metrics, want %d", len(res.Metrics), wantCells*3)
	}
	got := metricMap(t, res.Metrics)

	fcs, err := jetty.ParseAll(spec.Filters)
	if err != nil {
		t.Fatal(err)
	}
	tech := energy.Tech180()
	for _, wname := range spec.Workloads {
		sp, err := workload.Lookup(wname)
		if err != nil {
			t.Fatal(err)
		}
		sp = sp.Scale(spec.Scale)
		for _, m := range spec.Machines {
			cfg, err := m.Config(fcs)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sim.RunApp(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial := sim.EnergyReductions(ref, cfg, tech, energy.SerialTagData)
			for fi, fname := range ref.FilterNames {
				mt, ok := got[metricKey(wname, m.Label(), fname, 0)]
				if !ok {
					t.Fatalf("no metric for %s/%s/%s", wname, m.Label(), fname)
				}
				if mt.Coverage != ref.Coverage[fi] {
					t.Errorf("%s/%s/%s coverage %v, individual run says %v",
						wname, m.Label(), fname, mt.Coverage, ref.Coverage[fi])
				}
				if mt.SerialOverAll != serial[fi].OverAll {
					t.Errorf("%s/%s/%s serial energy %v, individual run says %v",
						wname, m.Label(), fname, mt.SerialOverAll, serial[fi].OverAll)
				}
				if mt.SnoopMissOfAll != ref.SnoopMissOfAll {
					t.Errorf("%s/%s/%s snoopmiss %v, individual run says %v",
						wname, m.Label(), fname, mt.SnoopMissOfAll, ref.SnoopMissOfAll)
				}
			}
		}
	}
}

// TestSweepRerunHitsCache: an identical resubmission recomputes nothing —
// every cell is served from the engine's content-addressed cache.
func TestSweepRerunHitsCache(t *testing.T) {
	r := testRunner(t)
	spec := acceptanceSpec()
	if _, err := Run(context.Background(), r, spec, nil); err != nil {
		t.Fatal(err)
	}
	executedBefore := r.Engine().Stats().Executed

	s, err := Submit(r, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Status(true)
	if st.State != "done" || st.CacheHits != len(s.Cells()) {
		t.Fatalf("rerun status %s with %d/%d cache hits, want all", st.State, st.CacheHits, len(s.Cells()))
	}
	for _, c := range st.Cell {
		if !c.CacheHit {
			t.Errorf("cell %d (%s on %s) recomputed", c.Index, c.Workload, c.Machine)
		}
	}
	if after := r.Engine().Stats().Executed; after != executedBefore {
		t.Errorf("rerun executed %d new tasks", after-executedBefore)
	}
}

// TestBankMatchesEach: filter placement is a cost knob, not a result
// knob — per-filter numbers are identical whether the filters share one
// pass or each get their own.
func TestBankMatchesEach(t *testing.T) {
	r := testRunner(t)
	bank := acceptanceSpec()
	each := bank
	each.FilterMode = ModeEach

	bres, err := Run(context.Background(), r, bank, nil)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Run(context.Background(), r, each, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eres.Cells) != len(bres.Cells)*len(bank.Filters) {
		t.Fatalf("each mode ran %d cells, want %d", len(eres.Cells), len(bres.Cells)*len(bank.Filters))
	}
	bm, em := metricMap(t, bres.Metrics), metricMap(t, eres.Metrics)
	if len(bm) != len(em) {
		t.Fatalf("bank has %d metrics, each has %d", len(bm), len(em))
	}
	for k, b := range bm {
		if em[k] != b {
			t.Errorf("metric %s differs: bank %+v, each %+v", k, b, em[k])
		}
	}
}

// TestTraceCells: a "trace:" axis entry replays the stored stream and
// reports exactly what a direct replay reports.
func TestTraceCells(t *testing.T) {
	sp, err := workload.Lookup("WebServer")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, sp.Source(2), 4000, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}}); err != nil {
		t.Fatal(err)
	}
	in, err := sim.LoadTrace("", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	resolver := func(ref string) (sim.TraceInput, error) {
		if ref == "web" {
			return in, nil
		}
		return sim.TraceInput{}, fmt.Errorf("unknown trace %q", ref)
	}

	spec := Spec{
		Workloads: []string{"trace:web", "Lu"},
		Filters:   []string{"EJ-32x4"},
		Scale:     0.02,
		Repeat:    3, // trace cells must collapse to one repetition
	}
	cells, err := spec.Expand(resolver)
	if err != nil {
		t.Fatal(err)
	}
	traceCells, genCells := 0, 0
	for _, c := range cells {
		if strings.HasPrefix(c.Workload, TracePrefix) {
			traceCells++
		} else {
			genCells++
		}
	}
	if traceCells != 1 || genCells != 3 {
		t.Fatalf("expansion: %d trace cells (want 1), %d generator cells (want 3)", traceCells, genCells)
	}

	res, err := Run(context.Background(), testRunner(t), spec, resolver)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Machine{}.Config([]jetty.Config{jetty.MustParse("EJ-32x4")})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunTraceCtx(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Metrics {
		if m.Workload != "trace:web" {
			continue
		}
		if want, _ := direct.CoverageOf("EJ-32x4"); m.Coverage != want {
			t.Errorf("trace cell coverage %v, direct replay %v", m.Coverage, want)
		}
	}

	// Unknown reference and missing resolver both fail loudly, and the
	// resolver's own diagnosis survives into the error.
	broken := func(string) (sim.TraceInput, error) { return sim.TraceInput{}, fmt.Errorf("file is corrupt") }
	if _, err := spec.Expand(broken); err == nil || !strings.Contains(err.Error(), "file is corrupt") {
		t.Errorf("resolver error not surfaced: %v", err)
	}
	if _, err := spec.Expand(nil); err == nil {
		t.Error("nil resolver accepted for a trace spec")
	}
}

// TestRepeatSeeds: repetitions perturb the seed, producing distinct cells
// whose spread the aggregation reports.
func TestRepeatSeeds(t *testing.T) {
	spec := Spec{
		Workloads: []string{"Lu"},
		Filters:   []string{"EJ-16x2"},
		Scale:     0.02,
		Repeat:    3,
	}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		keys[c.Key] = true
	}
	if len(keys) != 3 {
		t.Fatalf("repetitions share keys: %d distinct of 3", len(keys))
	}

	res, err := Run(context.Background(), testRunner(t), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupBy(res.Metrics, ByWorkload, ByFilter)
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	cov := groups[0].Columns[0]
	if cov.N != 3 {
		t.Errorf("coverage N = %d, want 3", cov.N)
	}
	if !(cov.Min <= cov.Mean && cov.Mean <= cov.Max) {
		t.Errorf("stats out of order: %+v", cov)
	}
	if cov.Min == cov.Max {
		t.Errorf("three seeds produced identical coverage %v — seed policy not applied", cov.Min)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},                                      // no workloads
		{Workloads: []string{"NoSuchApp"}},      // unknown workload
		{Workloads: []string{"Lu"}, Scale: -1},  // negative scale
		{Workloads: []string{"Lu"}, Scale: 1e9}, // over the scale cap
		{Workloads: []string{"Lu"}, Filters: []string{"XX-1"}},       // bad filter
		{Workloads: []string{"Lu"}, FilterMode: "sideways"},          // bad mode
		{Workloads: []string{"Lu"}, Repeat: MaxRepeat + 1},           // over repeat cap
		{Workloads: []string{"Lu"}, Machines: []Machine{{CPUs: 99}}}, // invalid machine
		{Workloads: []string{TracePrefix}},                           // empty trace ref
		{Workloads: []string{"Lu"}, Interval: 8},                     // interval below minimum
		{Workloads: []string{"Lu"}, Timelines: "some"},               // bad retention policy
		{Workloads: []string{"Lu"}, Timelines: TimelinesAll},         // retention without sampling
		{Workloads: []string{"Lu"}, Interval: 64, Scale: MaxScale},   // over the per-cell window cap
		{ // over the cell cap
			Workloads:  []string{"Lu", "ch", "ff", "oc", "ra", "em", "ba", "fm", "rt", "un"},
			FilterMode: ModeEach,
			Repeat:     MaxRepeat,
		},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := acceptanceSpec().Validate(); err != nil {
		t.Errorf("acceptance spec rejected: %v", err)
	}
}

// TestSweepTimelines covers the sampled-sweep path end to end: every
// cell runs sampled, per-filter metrics are unchanged versus the
// unsampled sweep, cell results are stripped of timelines, and the
// retention policy keeps exactly the advertised set.
func TestSweepTimelines(t *testing.T) {
	r := testRunner(t)
	base := Spec{
		Name:      "timelines",
		Workloads: []string{"Lu", "ch"},
		Filters:   []string{"EJ-16x2", "EJ-32x4"},
		Scale:     0.02,
		Repeat:    2,
		Interval:  1024,
	}

	plain := base
	plain.Interval, plain.Timelines = 0, ""
	plainRes, err := Run(context.Background(), r, plain, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, policy := range []string{TimelinesNone, TimelinesFirst, TimelinesAll} {
		spec := base
		spec.Timelines = policy
		res, err := Run(context.Background(), r, spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}

		// Sampling changes no metric (bit-identical per-filter numbers).
		if len(res.Metrics) != len(plainRes.Metrics) {
			t.Fatalf("%s: %d metrics vs %d unsampled", policy, len(res.Metrics), len(plainRes.Metrics))
		}
		for i := range res.Metrics {
			if res.Metrics[i] != plainRes.Metrics[i] {
				t.Errorf("%s: metric %d drifted under sampling:\n sampled %+v\n plain   %+v",
					policy, i, res.Metrics[i], plainRes.Metrics[i])
			}
		}

		// Cells never carry timelines (Result.Timelines is the one home).
		for _, c := range res.Cells {
			if c.Result.Timeline != nil {
				t.Fatalf("%s: cell %d kept its timeline", policy, c.Cell.Index)
			}
		}

		var want int
		switch policy {
		case TimelinesNone:
			want = 0
		case TimelinesFirst:
			want = 2 // one per (workload, machine); repeats collapse
		case TimelinesAll:
			want = len(res.Cells)
		}
		if len(res.Timelines) != want {
			t.Fatalf("%s: retained %d timelines, want %d", policy, len(res.Timelines), want)
		}
		for _, ct := range res.Timelines {
			if policy == TimelinesFirst && ct.Repeat != 0 {
				t.Errorf("%s: retained repeat %d of %s", policy, ct.Repeat, ct.Workload)
			}
			if ct.Timeline == nil || len(ct.Timeline.Windows) == 0 {
				t.Fatalf("%s: empty retained timeline for cell %d", policy, ct.Cell)
			}
			// The retained timeline conserves its cell's run length.
			refs, _, _ := ct.Timeline.Sum()
			if cellRefs := res.Cells[ct.Cell].Result.Refs; refs != cellRefs {
				t.Errorf("%s: timeline sums to %d refs, cell ran %d", policy, refs, cellRefs)
			}
		}
	}
}

// TestSampledSweepRerunHitsCache pins the cache key discipline: a
// sampled rerun recomputes nothing, and sampled cells never collide
// with the unsampled cells of the same cross-product.
func TestSampledSweepRerunHitsCache(t *testing.T) {
	r := testRunner(t)
	spec := Spec{
		Workloads: []string{"Lu"},
		Filters:   []string{"EJ-16x2"},
		Scale:     0.02,
		Interval:  1024,
		Timelines: TimelinesAll,
	}
	if _, err := Run(context.Background(), r, spec, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Submit(r, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(false); st.CacheHits != st.Cells {
		t.Errorf("sampled rerun recomputed: %d/%d cache hits", st.CacheHits, st.Cells)
	}
	if len(res.Timelines) == 0 {
		t.Fatal("cached sampled rerun lost its timelines")
	}

	// The unsampled variant must not be served the sampled cell.
	plain := spec
	plain.Interval, plain.Timelines = 0, ""
	ps, err := Submit(r, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := ps.Status(false); st.CacheHits != 0 {
		t.Errorf("unsampled sweep hit the sampled cache entry (%d hits)", st.CacheHits)
	}
}

func TestSweepCancel(t *testing.T) {
	r := testRunner(t)
	spec := Spec{Workloads: []string{"Fmm"}, Filters: []string{"EJ-8x2"}, Scale: 100}
	s, err := Submit(r, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	if _, err := s.Wait(context.Background()); err == nil {
		t.Fatal("canceled sweep returned a result")
	}
	st := s.Status(false)
	if st.State != "canceled" {
		t.Errorf("state %s after cancel", st.State)
	}
}

func TestRenderers(t *testing.T) {
	res, err := Run(context.Background(), testRunner(t), Spec{
		Workloads: []string{"Lu", "ch"},
		Filters:   []string{"EJ-32x4", "EJ-16x2"},
		Scale:     0.02,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// CSV round-trips through the standard parser with a stable shape.
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, res.Metrics); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(res.Metrics) || len(rows[0]) != 4+len(Columns) {
		t.Fatalf("cells CSV shape %dx%d", len(rows), len(rows[0]))
	}

	axes := []Axis{ByFilter}
	groups := GroupBy(res.Metrics, axes...)
	if len(groups) != 2 {
		t.Fatalf("%d groups by filter, want 2", len(groups))
	}
	buf.Reset()
	if err := WriteGroupsCSV(&buf, groups, axes); err != nil {
		t.Fatal(err)
	}
	if rows, err = csv.NewReader(&buf).ReadAll(); err != nil || len(rows) != 3 {
		t.Fatalf("groups CSV: %v, %d rows", err, len(rows))
	}

	md := Markdown("sweep", groups, axes)
	for _, want := range []string{"| filter ", "| coverage ", "EJ-32x4", "EJ-16x2"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown lacks %q:\n%s", want, md)
		}
	}
	rep := Report("sweep", groups, axes)
	if !strings.Contains(rep, "EJ-32x4") || !strings.Contains(rep, "coverage") {
		t.Errorf("report lacks expected cells:\n%s", rep)
	}

	buf.Reset()
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"metrics"`) {
		t.Error("JSON render lacks metrics")
	}

	best, err := BestBy(groups, "coverage")
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Labels) != 1 {
		t.Errorf("best group labels %v", best.Labels)
	}
	if _, err := BestBy(groups, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{4, 1, 2})
	if st.N != 3 || st.Min != 1 || st.Max != 4 {
		t.Errorf("stats %+v", st)
	}
	if got, want := st.Mean, 7.0/3; got != want {
		t.Errorf("mean %v, want %v", got, want)
	}
	if st.GeoMean <= 1.9 || st.GeoMean >= 2.1 { // cbrt(8) = 2
		t.Errorf("geomean %v, want 2", st.GeoMean)
	}
	if st := Summarize([]float64{1, -2}); st.GeoMean != 0 {
		t.Errorf("geomean over non-positive samples = %v, want 0", st.GeoMean)
	}
	if st := Summarize(nil); st.N != 0 {
		t.Errorf("empty stats %+v", st)
	}
	if _, err := ParseAxes([]string{"workload", "bogus"}); err == nil {
		t.Error("bogus axis accepted")
	}
}
