// Package sweep turns the repository from "runs experiments" into "runs
// studies": a declarative specification of a configuration cross-product
// — workloads × machines × JETTY filter configurations × repetitions —
// expanded into cells, scheduled through the shared internal/engine
// worker pool, and folded into paper-style aggregates.
//
// A Spec names its axes by the same strings the rest of the repository
// uses: workload.Library names (or "trace:<ref>" entries replaying a
// stored JTRC stream), machine shorthands (CPUs, L2 geometry,
// subblocking), and jetty.Parse configuration names. Expansion produces
// one Cell per point of the cross-product; every cell is
// content-addressed exactly like a single experiment (sim.Fingerprint /
// sim.TraceFingerprint), so the engine's cache and in-flight coalescing
// deduplicate overlapping cells within a sweep, across sweeps, and
// against every other experiment the process has run — re-running an
// identical sweep recomputes nothing.
//
// Two filter placements are supported. "bank" (the default) attaches
// every swept filter configuration to each (workload, machine) run as
// simultaneous observers — the paper's own methodology, one simulation
// pass measuring the whole bank, because filtering never perturbs
// protocol outcomes. "each" gives every filter its own cell. Both
// produce identical per-filter numbers (TestBankMatchesEach asserts it);
// bank mode costs |filters|× less simulation.
//
// Scheduling fuses "each"-mode cells back onto shared passes: cells
// that agree on everything but their filter group (same workload,
// scale, seed, machine geometry) are planned into one group
// (plan.go) and submitted as a single engine group task that replays
// the reference stream once with every member's bank attached as
// concatenated observers (sim.FusedAppGroup / sim.FusedTraceGroup).
// Each member's result is demuxed out of the wide pass and cached
// under the member cell's own content address, so fused results are
// bit-identical to per-cell runs (TestSweepFusedMatchesPerCell) and
// fused and per-cell sweeps interoperate through the engine cache.
// Spec.NoFuse forces the legacy per-cell scheduling.
//
// Results fold into per-cell Metrics (coverage, the four Figure 6
// energy-reduction numbers, snoop-miss fractions), grouped along any
// axis combination with min/max/mean/geo-mean summaries, and render as
// CSV, JSON, markdown tables (the EXPERIMENTS.md style) or aligned
// terminal tables. cmd/jettysweep drives a sweep from the command line;
// the jettyd service exposes the same engine as POST/GET /v1/sweeps.
package sweep
