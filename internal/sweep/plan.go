package sweep

import (
	"jetty/internal/sim"
)

// Fused group planning. Cells that differ only in their filter group —
// same reference stream (workload + scale + seed, or trace), same
// machine geometry — measure the exact same simulation with different
// observer banks attached, so the planner fuses them onto ONE pass
// with every bank riding along (sim.RunAppFusedCtx). A 16-variant
// "each"-mode filter axis then costs one simulation plus 16 cheap
// filter passes instead of 16 full runs.
//
// The grouping key is content-addressed, like everything else in the
// pipeline: the cell's own fingerprint recomputed over the FILTERLESS
// machine config. Two cells agree on that base fingerprint exactly
// when they agree on everything but the filter bank — which is exactly
// when one stream serves both.

// PlanUnits partitions cells into fusable groups — the engine's (and a
// cluster coordinator's) indivisible scheduling units. Each group is a
// list of ascending cell indices sharing one reference stream; shipping
// a whole group to one worker preserves the fusion win remotely.
func PlanUnits(spec Spec, cells []Cell) [][]int {
	return planGroups(spec.normalize(), cells)
}

// planGroups partitions cells into fusable groups: each group is a
// list of ascending cell indices sharing one reference stream, in
// first-appearance order. Singleton groups (and every group, when the
// spec sets NoFuse) schedule per cell.
func planGroups(spec Spec, cells []Cell) [][]int {
	if spec.NoFuse {
		out := make([][]int, len(cells))
		for i := range cells {
			out[i] = []int{i}
		}
		return out
	}
	byBase := make(map[string]int)
	var out [][]int
	for i, c := range cells {
		var base string
		if c.trace != nil {
			base = sim.TraceFingerprint(c.trace.Digest, c.cfg.WithoutFilters())
		} else {
			base = sim.Fingerprint(c.spec, c.cfg.WithoutFilters())
		}
		g, ok := byBase[base]
		if !ok {
			g = len(out)
			byBase[base] = g
			out = append(out, nil)
		}
		out[g] = append(out[g], i)
	}
	return out
}
