package sweep

import (
	"fmt"
	"math"
	"sort"

	"jetty/internal/energy"
	"jetty/internal/metrics"
	"jetty/internal/sim"
)

// CellResult pairs one finished cell with its raw measurement.
type CellResult struct {
	Cell   Cell          `json:"cell"`
	Result sim.AppResult `json:"result"`
}

// Metric is one (cell, filter) observation: the paper's per-filter
// numbers plus the cell's snoop-miss fractions. A bank-mode cell yields
// one Metric per attached filter.
type Metric struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Filter   string `json:"filter"`
	Repeat   int    `json:"repeat"`

	// Coverage is the filter rate: the fraction of snoops filtered
	// (Figures 4/5).
	Coverage float64 `json:"coverage"`
	// The four Figure 6 energy reductions.
	SerialOverSnoops   float64 `json:"energy_serial_over_snoops"`
	SerialOverAll      float64 `json:"energy_serial_over_all"`
	ParallelOverSnoops float64 `json:"energy_parallel_over_snoops"`
	ParallelOverAll    float64 `json:"energy_parallel_over_all"`
	// The cell's Table 3 snoop-miss fractions (filter-independent,
	// repeated on every Metric of the cell).
	SnoopMissOfSnoops float64 `json:"snoopmiss_of_snoops"`
	SnoopMissOfAll    float64 `json:"snoopmiss_of_all"`
}

// CellTimeline is one retained per-cell timeline (see Spec.Timelines).
type CellTimeline struct {
	Cell     int               `json:"cell"`
	Workload string            `json:"workload"`
	Machine  string            `json:"machine"`
	Repeat   int               `json:"repeat"`
	Timeline *metrics.Timeline `json:"timeline"`
}

// Result is a finished sweep: the raw per-cell measurements and the
// flattened per-filter metrics. Sampled sweeps additionally carry the
// timelines the retention policy kept; cell results themselves are
// always stripped of timelines (Timelines is the one home, applied
// once, instead of a copy hiding in every CellResult).
type Result struct {
	Spec      Spec           `json:"spec"`
	Cells     []CellResult   `json:"cells"`
	Metrics   []Metric       `json:"metrics"`
	Timelines []CellTimeline `json:"timelines,omitempty"`
}

// Fold derives the metric set from finished cells and applies the
// timeline retention policy. results must align with cells by index.
// It is the folding step of Sweep.Wait, exported for coordinators that
// collect cell results remotely (internal/cluster) and fold locally.
func Fold(spec Spec, cells []Cell, results []sim.AppResult) *Result {
	return fold(spec.normalize(), cells, results)
}

// fold derives the metric set from finished cells and applies the
// timeline retention policy.
func fold(spec Spec, cells []Cell, results []sim.AppResult) *Result {
	out := &Result{Spec: spec}
	tech := energy.Tech180()
	policy := spec.normalize().Timelines
	keepFirst := map[string]bool{}
	for i, c := range cells {
		res := results[i]
		if tl := res.Timeline; tl != nil {
			res.Timeline = nil // stripped from the cell; retained below
			switch policy {
			case TimelinesAll:
				out.Timelines = append(out.Timelines, CellTimeline{
					Cell: c.Index, Workload: c.Workload, Machine: c.Machine, Repeat: c.Repeat, Timeline: tl,
				})
			case TimelinesFirst:
				key := c.Workload + "\x00" + c.Machine
				if !keepFirst[key] {
					keepFirst[key] = true
					out.Timelines = append(out.Timelines, CellTimeline{
						Cell: c.Index, Workload: c.Workload, Machine: c.Machine, Repeat: c.Repeat, Timeline: tl,
					})
				}
			}
		}
		out.Cells = append(out.Cells, CellResult{Cell: c, Result: res})
		serial := sim.EnergyReductions(res, c.cfg, tech, energy.SerialTagData)
		parallel := sim.EnergyReductions(res, c.cfg, tech, energy.ParallelTagData)
		for fi, name := range res.FilterNames {
			out.Metrics = append(out.Metrics, Metric{
				Workload:           c.Workload,
				Machine:            c.Machine,
				Filter:             name,
				Repeat:             c.Repeat,
				Coverage:           res.Coverage[fi],
				SerialOverSnoops:   serial[fi].OverSnoops,
				SerialOverAll:      serial[fi].OverAll,
				ParallelOverSnoops: parallel[fi].OverSnoops,
				ParallelOverAll:    parallel[fi].OverAll,
				SnoopMissOfSnoops:  res.SnoopMissOfSnoops,
				SnoopMissOfAll:     res.SnoopMissOfAll,
			})
		}
	}
	return out
}

// Stats summarizes one metric column over a group.
type Stats struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// GeoMean is the geometric mean, 0 when any sample is non-positive
	// (energy reductions can go negative when filter overhead exceeds
	// savings; a geometric mean is then undefined).
	GeoMean float64 `json:"geomean"`
}

// Summarize computes Stats over samples (zero Stats for empty input).
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	st := Stats{N: len(xs), Min: xs[0], Max: xs[0]}
	logSum, geoOK := 0.0, true
	for _, x := range xs {
		st.Mean += x
		st.Min = math.Min(st.Min, x)
		st.Max = math.Max(st.Max, x)
		if x > 0 {
			logSum += math.Log(x)
		} else {
			geoOK = false
		}
	}
	st.Mean /= float64(len(xs))
	if geoOK {
		st.GeoMean = math.Exp(logSum / float64(len(xs)))
	}
	return st
}

// Axis names one grouping dimension.
type Axis string

// Grouping dimensions.
const (
	ByWorkload Axis = "workload"
	ByMachine  Axis = "machine"
	ByFilter   Axis = "filter"
)

// ParseAxes parses a list of axis names.
func ParseAxes(names []string) ([]Axis, error) {
	out := make([]Axis, len(names))
	for i, n := range names {
		switch Axis(n) {
		case ByWorkload, ByMachine, ByFilter:
			out[i] = Axis(n)
		default:
			return nil, fmt.Errorf("sweep: unknown axis %q (want workload, machine or filter)", n)
		}
	}
	return out, nil
}

// Columns are the metric columns every aggregate carries, in render
// order. The name doubles as the CSV/markdown header.
var Columns = []struct {
	Name string
	Of   func(Metric) float64
}{
	{"coverage", func(m Metric) float64 { return m.Coverage }},
	{"energy-%/snoops (serial)", func(m Metric) float64 { return m.SerialOverSnoops }},
	{"energy-%/all (serial)", func(m Metric) float64 { return m.SerialOverAll }},
	{"energy-%/snoops (parallel)", func(m Metric) float64 { return m.ParallelOverSnoops }},
	{"energy-%/all (parallel)", func(m Metric) float64 { return m.ParallelOverAll }},
	{"snoopmiss/snoops", func(m Metric) float64 { return m.SnoopMissOfSnoops }},
	{"snoopmiss/all", func(m Metric) float64 { return m.SnoopMissOfAll }},
}

// Group is one aggregate row: the axis values it groups on and per-column
// statistics over every member metric.
type Group struct {
	// Labels are the group's axis values, aligned with the GroupBy axes.
	Labels []string `json:"labels"`
	// Columns holds one Stats per sweep.Columns entry, same order.
	Columns []Stats `json:"columns"`
}

// axisValue extracts one metric coordinate.
func axisValue(m Metric, a Axis) string {
	switch a {
	case ByWorkload:
		return m.Workload
	case ByMachine:
		return m.Machine
	case ByFilter:
		return m.Filter
	default:
		return ""
	}
}

// GroupBy folds metrics along the given axes (first-appearance order,
// which expansion makes deterministic). No axes means one global group.
func GroupBy(metrics []Metric, axes ...Axis) []Group {
	type bucket struct {
		labels  []string
		samples [][]float64
	}
	var order []string
	buckets := map[string]*bucket{}
	for _, m := range metrics {
		labels := make([]string, len(axes))
		key := ""
		for i, a := range axes {
			labels[i] = axisValue(m, a)
			key += labels[i] + "\x00"
		}
		b := buckets[key]
		if b == nil {
			b = &bucket{labels: labels, samples: make([][]float64, len(Columns))}
			buckets[key] = b
			order = append(order, key)
		}
		for ci, col := range Columns {
			b.samples[ci] = append(b.samples[ci], col.Of(m))
		}
	}
	out := make([]Group, 0, len(order))
	for _, key := range order {
		b := buckets[key]
		g := Group{Labels: b.labels, Columns: make([]Stats, len(Columns))}
		for ci := range Columns {
			g.Columns[ci] = Summarize(b.samples[ci])
		}
		out = append(out, g)
	}
	return out
}

// BestBy returns the group labels with the highest mean of the named
// column — "which filter saved the most energy over this sweep" style
// queries. Ties resolve to the earliest group.
func BestBy(groups []Group, column string) (Group, error) {
	ci := -1
	for i, c := range Columns {
		if c.Name == column {
			ci = i
		}
	}
	if ci < 0 {
		names := make([]string, len(Columns))
		for i, c := range Columns {
			names[i] = c.Name
		}
		sort.Strings(names)
		return Group{}, fmt.Errorf("sweep: unknown column %q (have %v)", column, names)
	}
	if len(groups) == 0 {
		return Group{}, fmt.Errorf("sweep: no groups")
	}
	best := groups[0]
	for _, g := range groups[1:] {
		if g.Columns[ci].Mean > best.Columns[ci].Mean {
			best = g
		}
	}
	return best, nil
}
