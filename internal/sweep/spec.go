package sweep

import (
	"fmt"
	"strings"

	"jetty/internal/addr"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// TracePrefix marks a workload-axis entry that replays a stored trace
// instead of running a library generator. The text after the prefix is a
// resolver-dependent reference: an upload digest for the jettyd service,
// a file path for cmd/jettysweep.
const TracePrefix = "trace:"

// Bounds on a single sweep. Everything a spec can grow in is capped:
// sweeps arrive from unauthenticated service clients too.
const (
	// MaxCells bounds the expanded cross-product.
	MaxCells = 4096
	// MaxRepeat bounds the repetition axis.
	MaxRepeat = 64
	// MaxScale bounds the access-budget multiplier (mirrors the service's
	// per-experiment cap).
	MaxScale = 10_000
)

// Machine describes one machine-axis value as overrides of the paper's
// base configuration (smp.PaperConfig). The zero Machine is the paper's
// 4-way, 1 MB 4-way-associative, subblocked machine.
type Machine struct {
	// Name labels the axis value in results; empty derives a shorthand
	// like "4cpu-1024K-4w" (plus "-nsb" when NSB is set).
	Name string `json:"name,omitempty"`
	// CPUs is the machine width (0 = 4, the paper's).
	CPUs int `json:"cpus,omitempty"`
	// NSB disables L2 subblocking (the §4.3 comparison machine).
	NSB bool `json:"nsb,omitempty"`
	// L2Bytes overrides the L2 capacity (0 = 1 MB).
	L2Bytes int `json:"l2_bytes,omitempty"`
	// L2Assoc overrides the L2 associativity (0 = 4).
	L2Assoc int `json:"l2_assoc,omitempty"`
}

// withDefaults fills the zero fields with the paper's base machine.
func (m Machine) withDefaults() Machine {
	if m.CPUs == 0 {
		m.CPUs = 4
	}
	if m.L2Bytes == 0 {
		m.L2Bytes = 1 << 20
	}
	if m.L2Assoc == 0 {
		m.L2Assoc = 4
	}
	return m
}

// Label returns the machine's result label: Name, or the derived
// geometry shorthand.
func (m Machine) Label() string {
	if m.Name != "" {
		return m.Name
	}
	m = m.withDefaults()
	l := fmt.Sprintf("%dcpu-%dK-%dw", m.CPUs, m.L2Bytes>>10, m.L2Assoc)
	if m.NSB {
		l += "-nsb"
	}
	return l
}

// Config builds the smp machine with the given filter bank attached.
func (m Machine) Config(filters []jetty.Config) (smp.Config, error) {
	m = m.withDefaults()
	cfg := smp.PaperConfig(m.CPUs).WithFilters(filters...)
	cfg.L2.SizeBytes = m.L2Bytes
	cfg.L2.Assoc = m.L2Assoc
	if m.NSB {
		cfg.L2.Geom = addr.NonSubblocked
	}
	if err := cfg.Validate(); err != nil {
		return smp.Config{}, fmt.Errorf("sweep: machine %s: %w", m.Label(), err)
	}
	return cfg, nil
}

// Spec is a declarative sweep: the cross-product of its axes, run at the
// given scale and repetition policy. It is the JSON body of POST
// /v1/sweeps and the file cmd/jettysweep reads.
type Spec struct {
	// Name labels the sweep in listings and renders.
	Name string `json:"name,omitempty"`
	// Workloads is the workload axis: library names or abbreviations
	// ("Barnes", "un", "WebServer", ...) and/or "trace:<ref>" entries.
	// Required, at least one.
	Workloads []string `json:"workloads"`
	// Machines is the machine axis; empty means the single paper machine.
	Machines []Machine `json:"machines,omitempty"`
	// Filters is the JETTY-configuration axis (jetty.Parse names); empty
	// means the union bank of all the paper's figures.
	Filters []string `json:"filters,omitempty"`
	// FilterMode places the filter axis: "bank" (default) attaches every
	// filter to each (workload, machine) run as simultaneous observers;
	// "each" gives every filter its own cell. Per-filter numbers are
	// identical either way; bank simulates |Filters|× less.
	FilterMode string `json:"filter_mode,omitempty"`
	// Scale multiplies every generator access budget (0 = 1, the paper's
	// budgets). Does not apply to trace entries (a stored stream has a
	// fixed length).
	Scale float64 `json:"scale,omitempty"`
	// Repeat runs every generator cell this many times (0 or 1 = once),
	// perturbing the workload seed by SeedStride per repetition, so
	// aggregates carry min/max spread instead of a single sample. Trace
	// entries replay identically and are run once regardless.
	Repeat int `json:"repeat,omitempty"`
	// SeedStride is the per-repetition seed offset (0 = 1).
	SeedStride int64 `json:"seed_stride,omitempty"`
	// Interval, when nonzero, samples every cell with that timeline
	// window width (accesses per window, >= metrics.MinInterval; see
	// internal/metrics). Sampling never changes per-filter numbers; it
	// adds a per-cell timeline whose retention Timelines controls.
	Interval uint64 `json:"interval,omitempty"`
	// NoFuse forces per-cell scheduling: every cell runs as its own
	// engine task even when several cells could share one simulation
	// pass (a filter-only axis in "each" mode). Results are bit-identical
	// either way — the flag exists for A/B measurement and as an escape
	// hatch, not for correctness.
	NoFuse bool `json:"no_fuse,omitempty"`
	// Timelines is the per-cell timeline retention policy, applied when
	// folding a sampled sweep (Interval > 0):
	//
	//	"none"  (default) timelines are computed and dropped — the cheap
	//	        way to keep sampled cache keys warm for later fetches
	//	"first" retain repeat 0 of every (workload, machine) — one
	//	        representative time series per axis point
	//	"all"   retain every cell's timeline (largest results)
	Timelines string `json:"timelines,omitempty"`
}

// Timeline retention policies.
const (
	TimelinesNone  = "none"
	TimelinesFirst = "first"
	TimelinesAll   = "all"
)

// MaxWindowsPerCell bounds one cell's timeline (sweeps arrive from
// unauthenticated service clients; a tiny interval against a huge scaled
// budget would otherwise retain unbounded window lists).
const MaxWindowsPerCell = 1 << 14

// Filter-placement modes.
const (
	ModeBank = "bank"
	ModeEach = "each"
)

// normalize fills the spec's defaulted fields.
func (s Spec) normalize() Spec {
	if len(s.Machines) == 0 {
		s.Machines = []Machine{{}}
	}
	if len(s.Filters) == 0 {
		s.Filters = sim.AllFigureConfigs()
	}
	if s.FilterMode == "" {
		s.FilterMode = ModeBank
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Repeat <= 0 {
		s.Repeat = 1
	}
	if s.SeedStride == 0 {
		s.SeedStride = 1
	}
	if s.Timelines == "" {
		s.Timelines = TimelinesNone
	}
	return s
}

// Validate reports specification errors without resolving trace
// references (expansion does that, with a resolver in hand).
func (s Spec) Validate() error {
	n := s.normalize()
	if len(n.Workloads) == 0 {
		return fmt.Errorf("sweep: no workloads")
	}
	if n.Scale < 0 || n.Scale > MaxScale {
		return fmt.Errorf("sweep: scale %v out of range (0, %d]", n.Scale, MaxScale)
	}
	if n.Repeat > MaxRepeat {
		return fmt.Errorf("sweep: repeat %d exceeds %d", n.Repeat, MaxRepeat)
	}
	if n.FilterMode != ModeBank && n.FilterMode != ModeEach {
		return fmt.Errorf("sweep: filter_mode %q must be %q or %q", n.FilterMode, ModeBank, ModeEach)
	}
	if n.Interval > 0 && n.Interval < metrics.MinInterval {
		return fmt.Errorf("sweep: interval %d below minimum %d", n.Interval, metrics.MinInterval)
	}
	switch n.Timelines {
	case TimelinesNone, TimelinesFirst, TimelinesAll:
	default:
		return fmt.Errorf("sweep: timelines %q must be %q, %q or %q",
			n.Timelines, TimelinesNone, TimelinesFirst, TimelinesAll)
	}
	if n.Interval == 0 && s.Timelines != "" && n.Timelines != TimelinesNone {
		return fmt.Errorf("sweep: timelines %q needs a sampling interval", n.Timelines)
	}
	for _, w := range n.Workloads {
		if strings.HasPrefix(w, TracePrefix) {
			if w == TracePrefix {
				return fmt.Errorf("sweep: empty trace reference")
			}
			continue
		}
		sp, err := workload.Lookup(w)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if n.Interval > 0 {
			if windows := sp.Scale(n.Scale).Accesses / n.Interval; windows > MaxWindowsPerCell {
				return fmt.Errorf("sweep: %s at interval %d yields %d windows per cell (cap %d)",
					w, n.Interval, windows, MaxWindowsPerCell)
			}
		}
	}
	if _, err := jetty.ParseAll(n.Filters); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	for _, m := range n.Machines {
		if _, err := m.Config(nil); err != nil {
			return err
		}
	}
	if c := n.cellCount(); c > MaxCells {
		return fmt.Errorf("sweep: %d cells exceed the %d-cell cap", c, MaxCells)
	}
	return nil
}

// cellCount is the upper bound of the expansion (trace entries repeat
// only once, so the true count may be lower).
func (s Spec) cellCount() int {
	groups := 1
	if s.FilterMode == ModeEach {
		groups = len(s.Filters)
	}
	return len(s.Workloads) * len(s.Machines) * groups * s.Repeat
}

// TraceResolver resolves a "trace:<ref>" workload-axis entry to a loaded
// trace. The jettyd service resolves upload digests; cmd/jettysweep
// resolves file paths. The error distinguishes "no such reference" from
// "reference found but unusable" (unreadable file, corrupt trace, ...).
type TraceResolver func(ref string) (sim.TraceInput, error)

// Cell is one point of the expanded cross-product: one simulation run.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// Workload, Machine and Repeat are the cell's axis coordinates.
	// Workload keeps the spec's spelling ("trace:<ref>" for replays) —
	// it is the grouping key, so it must be stable across runs.
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Repeat   int    `json:"repeat"`
	// Filters is the filter group measured by this cell (the whole bank
	// in bank mode, one configuration in each mode).
	Filters []string `json:"filters"`
	// Key is the cell's content address: the engine cache/dedup key.
	Key string `json:"key"`

	spec  workload.Spec   // generator cells
	trace *sim.TraceInput // replay cells
	cfg   smp.Config
}

// Config returns the cell's machine configuration (filters attached).
func (c Cell) Config() smp.Config { return c.cfg }

// Total is the cell's access budget: how many references the cell
// simulates (a progress denominator for schedulers that track cells
// without holding engine jobs).
func (c Cell) Total() uint64 {
	if c.trace != nil {
		return c.trace.Records
	}
	return c.spec.Accesses
}

// Expand resolves and expands the spec into its cells, in deterministic
// workload-major order. traces may be nil when the spec has no trace
// entries.
func (s Spec) Expand(traces TraceResolver) ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalize()

	groups := [][]string{n.Filters}
	if n.FilterMode == ModeEach {
		groups = make([][]string, len(n.Filters))
		for i, f := range n.Filters {
			groups[i] = []string{f}
		}
	}

	// A machine configuration depends only on (machine, filter group):
	// parse and build each combination once, not once per workload.
	type point struct {
		machine Machine
		group   []string
		cfg     smp.Config
	}
	points := make([]point, 0, len(n.Machines)*len(groups))
	for _, m := range n.Machines {
		for _, group := range groups {
			fcs, err := jetty.ParseAll(group)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			cfg, err := m.Config(fcs)
			if err != nil {
				return nil, err
			}
			points = append(points, point{machine: m, group: group, cfg: cfg})
		}
	}

	var cells []Cell
	for _, w := range n.Workloads {
		isTrace := strings.HasPrefix(w, TracePrefix)
		var in sim.TraceInput
		var sp workload.Spec
		if isTrace {
			ref := strings.TrimPrefix(w, TracePrefix)
			if traces == nil {
				return nil, fmt.Errorf("sweep: %q: no trace resolver available", w)
			}
			var err error
			if in, err = traces(ref); err != nil {
				return nil, fmt.Errorf("sweep: trace %q: %w", ref, err)
			}
		} else {
			var err error
			if sp, err = workload.Lookup(w); err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			sp = sp.Scale(n.Scale)
		}
		if isTrace && n.Interval > 0 {
			if windows := in.Records / n.Interval; windows > MaxWindowsPerCell {
				return nil, fmt.Errorf("sweep: trace %s at interval %d yields %d windows per cell (cap %d)",
					in.Name, n.Interval, windows, MaxWindowsPerCell)
			}
		}
		for _, pt := range points {
			if isTrace && pt.cfg.CPUs < in.CPUs {
				return nil, fmt.Errorf("sweep: trace %s needs %d cpus, machine %s has %d",
					in.Name, in.CPUs, pt.machine.Label(), pt.cfg.CPUs)
			}
			repeats := n.Repeat
			if isTrace {
				repeats = 1 // a stored stream replays identically
			}
			for r := 0; r < repeats; r++ {
				c := Cell{
					Index:    len(cells),
					Workload: w,
					Machine:  pt.machine.Label(),
					Repeat:   r,
					Filters:  append([]string(nil), pt.group...),
					cfg:      pt.cfg,
				}
				if isTrace {
					tin := in
					c.trace = &tin
					c.Key = sim.TraceFingerprint(in.Digest, pt.cfg)
				} else {
					c.spec = sp
					c.spec.Seed = sp.Seed + n.SeedStride*int64(r)
					c.Key = sim.Fingerprint(c.spec, pt.cfg)
				}
				// Sampled cells cache under their own key (the result
				// payload carries a timeline).
				if n.Interval > 0 {
					c.Key = sim.SampledKey(c.Key, n.Interval)
				}
				cells = append(cells, c)
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: expansion produced no cells")
	}
	return cells, nil
}
