package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"jetty/internal/engine"
	"jetty/internal/sim"
	"jetty/internal/workload"
)

// fusedAxis is the four-family filter axis of the fused differential
// tests: one of each JETTY flavor, so the wide observer bank mixes
// every devirtualized filter kind.
func fusedAxis() []string {
	return []string{"EJ-32x4", "VEJ-32x4-8", "IJ-10x4x7", "HJ(IJ-9x4x7,EJ-32x4)"}
}

// runBothPaths runs spec through the fused scheduler and, on a SEPARATE
// engine (so nothing is served from a shared cache), through the legacy
// per-cell path, and returns both results.
func runBothPaths(t *testing.T, spec Spec, traces TraceResolver) (fused, perCell *Result) {
	t.Helper()
	fusedSpec := spec
	fusedSpec.NoFuse = false
	legacySpec := spec
	legacySpec.NoFuse = true

	var err error
	fused, err = Run(context.Background(), testRunner(t), fusedSpec, traces)
	if err != nil {
		t.Fatalf("fused path: %v", err)
	}
	perCell, err = Run(context.Background(), testRunner(t), legacySpec, traces)
	if err != nil {
		t.Fatalf("per-cell path: %v", err)
	}
	return fused, perCell
}

// assertResultsIdentical compares everything a sweep result carries
// except the spec itself (the two specs differ in the NoFuse flag by
// construction): per-cell AppResults, flattened metrics, retained
// timelines, and the GroupBy aggregation over every axis.
func assertResultsIdentical(t *testing.T, label string, fused, perCell *Result) {
	t.Helper()
	if len(fused.Cells) != len(perCell.Cells) {
		t.Fatalf("%s: %d fused cells vs %d per-cell", label, len(fused.Cells), len(perCell.Cells))
	}
	for i := range fused.Cells {
		if fused.Cells[i].Cell.Key != perCell.Cells[i].Cell.Key {
			t.Fatalf("%s: cell %d keys diverge: fused %s, per-cell %s",
				label, i, fused.Cells[i].Cell.Key, perCell.Cells[i].Cell.Key)
		}
		if !reflect.DeepEqual(fused.Cells[i].Result, perCell.Cells[i].Result) {
			t.Errorf("%s: cell %d (%s on %s, filters %v) result diverges",
				label, i, fused.Cells[i].Cell.Workload, fused.Cells[i].Cell.Machine, fused.Cells[i].Cell.Filters)
		}
	}
	if !reflect.DeepEqual(fused.Metrics, perCell.Metrics) {
		t.Errorf("%s: metrics diverge", label)
	}
	if !reflect.DeepEqual(fused.Timelines, perCell.Timelines) {
		t.Errorf("%s: retained timelines diverge", label)
	}
	axes := []Axis{ByWorkload, ByMachine, ByFilter}
	if !reflect.DeepEqual(GroupBy(fused.Metrics, axes...), GroupBy(perCell.Metrics, axes...)) {
		t.Errorf("%s: GroupBy aggregation diverges", label)
	}
}

// TestSweepFusedMatchesPerCell is the headline differential test: every
// library workload (the Table 2 suite, the scenarios, and both phased
// scenarios) crossed with the four-family filter axis in "each" mode
// runs through the fused scheduler and the legacy per-cell path, and
// every derived number — per-cell AppResults, metrics, sampled
// timelines, grouped aggregates — must be bit-identical.
func TestSweepFusedMatchesPerCell(t *testing.T) {
	var names []string
	for _, sp := range workload.Library() {
		names = append(names, sp.Name)
	}
	spec := Spec{
		Name:       "fused-differential",
		Workloads:  names,
		Filters:    fusedAxis(),
		FilterMode: ModeEach,
		Scale:      0.02,
		Interval:   1024,
		Timelines:  TimelinesAll,
	}

	// The fused path must actually fuse: one group per library workload.
	s, err := Submit(testRunner(t), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FusedGroups(); got != len(names) {
		t.Errorf("scheduled %d fused groups, want %d (one per workload)", got, len(names))
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	fused, perCell := runBothPaths(t, spec, nil)
	assertResultsIdentical(t, "library", fused, perCell)
}

// randomSpec draws a random but valid sweep spec: random workload
// subset, machines, filter axis, bank|each placement, interval, repeat
// and seed stride.
func randomSpec(rng *rand.Rand) Spec {
	workloads := []string{"Lu", "Cholesky", "Fft", "WebServer", "PhasedOLTP"}
	rng.Shuffle(len(workloads), func(i, j int) { workloads[i], workloads[j] = workloads[j], workloads[i] })
	filters := fusedAxis()
	rng.Shuffle(len(filters), func(i, j int) { filters[i], filters[j] = filters[j], filters[i] })

	spec := Spec{
		Workloads: workloads[:1+rng.Intn(2)],
		Filters:   filters[:2+rng.Intn(3)],
		Scale:     0.01,
		Repeat:    1 + rng.Intn(2),
		Machines:  []Machine{{}},
	}
	if rng.Intn(2) == 0 {
		spec.Machines = append(spec.Machines, Machine{CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2})
	}
	if rng.Intn(2) == 0 {
		spec.FilterMode = ModeEach
	} else {
		spec.FilterMode = ModeBank
	}
	if rng.Intn(2) == 0 {
		spec.Interval = 512 << rng.Intn(3)
		spec.Timelines = []string{TimelinesNone, TimelinesFirst, TimelinesAll}[rng.Intn(3)]
	}
	if rng.Intn(3) == 0 {
		spec.SeedStride = int64(1 + rng.Intn(1000))
	}
	return spec
}

// TestSweepFusedMatchesPerCellRandom is the property-test variant:
// randomized specs through both paths, still expecting bit identity.
// The seed is fixed for reproducibility; the specs vary machines,
// axes, filter placement, intervals, repeats and seed strides.
func TestSweepFusedMatchesPerCellRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	if testing.Short() {
		n = 2
	}
	for i := 0; i < n; i++ {
		spec := randomSpec(rng)
		label := fmt.Sprintf("spec %d (%+v)", i, spec)
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", label, err)
		}
		fused, perCell := runBothPaths(t, spec, nil)
		assertResultsIdentical(t, label, fused, perCell)
	}
}

// TestFusedCacheInterop pins the cache-key discipline across the two
// schedulers: fused runs fill the same content-addressed entries as
// per-cell runs, in both directions, and partially cached groups skip
// the cached banks without perturbing the rest.
func TestFusedCacheInterop(t *testing.T) {
	spec := Spec{
		Workloads:  []string{"Lu"},
		Filters:    fusedAxis(),
		FilterMode: ModeEach,
		Scale:      0.02,
	}
	perCellSpec := spec
	perCellSpec.NoFuse = true

	t.Run("fused-then-per-cell", func(t *testing.T) {
		r := testRunner(t)
		if _, err := Run(context.Background(), r, spec, nil); err != nil {
			t.Fatal(err)
		}
		executed := r.Engine().Stats().Executed
		s, err := Submit(r, perCellSpec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st := s.Status(false); st.CacheHits != st.Cells {
			t.Errorf("per-cell rerun after fused: %d/%d cache hits", st.CacheHits, st.Cells)
		}
		if after := r.Engine().Stats().Executed; after != executed {
			t.Errorf("per-cell rerun recomputed %d cells after a fused sweep", after-executed)
		}
	})

	t.Run("per-cell-then-fused", func(t *testing.T) {
		r := testRunner(t)
		if _, err := Run(context.Background(), r, perCellSpec, nil); err != nil {
			t.Fatal(err)
		}
		executed := r.Engine().Stats().Executed
		s, err := Submit(r, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st := s.Status(false); st.CacheHits != st.Cells {
			t.Errorf("fused rerun after per-cell: %d/%d cache hits", st.CacheHits, st.Cells)
		}
		if after := r.Engine().Stats().Executed; after != executed {
			t.Errorf("fused rerun recomputed %d cells after a per-cell sweep", after-executed)
		}
	})

	t.Run("partial-cache", func(t *testing.T) {
		r := testRunner(t)
		// Warm two of the four filter variants through the per-cell path.
		warm := perCellSpec
		warm.Filters = fusedAxis()[:2]
		if _, err := Run(context.Background(), r, warm, nil); err != nil {
			t.Fatal(err)
		}
		executed := r.Engine().Stats().Executed

		s, err := Submit(r, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		st := s.Status(true)
		if st.CacheHits != 2 {
			t.Errorf("partially cached fused sweep: %d cache hits, want 2", st.CacheHits)
		}
		// The two cold banks ride one fused pass: exactly 2 new executions.
		if after := r.Engine().Stats().Executed; after != executed+2 {
			t.Errorf("fused sweep over a half-warm cache executed %d new tasks, want 2", after-executed)
		}
		// And the mixed-provenance result still matches an all-cold run.
		cold, err := Run(context.Background(), testRunner(t), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Metrics, cold.Metrics) {
			t.Error("partially cached fused sweep diverges from the cold run")
		}
	})
}

// fusedRetireCollector is an OnRetire hook buffering traces by key.
type fusedRetireCollector struct {
	mu     sync.Mutex
	traces []engine.TaskTrace
}

func (c *fusedRetireCollector) hook(tr engine.TaskTrace) {
	c.mu.Lock()
	c.traces = append(c.traces, tr)
	c.mu.Unlock()
}

func (c *fusedRetireCollector) byKey() map[string][]engine.TaskTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string][]engine.TaskTrace{}
	for _, tr := range c.traces {
		out[tr.Key] = append(out[tr.Key], tr)
	}
	return out
}

// TestFusedCancelAndLoss: cancelling a fused sweep mid-run marks every
// member cell canceled (and nothing else), and retire traces fire
// exactly once per member with the fused kind, the submission origin,
// and a canceled terminal state.
func TestFusedCancelAndLoss(t *testing.T) {
	col := &fusedRetireCollector{}
	eng := engine.New(engine.Options{OnRetire: col.hook})
	t.Cleanup(eng.Close)
	r := sim.NewRunner(eng)

	// A big budget keeps the fused pass running until we cancel it.
	spec := Spec{
		Workloads:  []string{"Fmm"},
		Filters:    fusedAxis(),
		FilterMode: ModeEach,
		Scale:      100,
	}
	s, err := SubmitOrigin(r, spec, nil, "req-cancel-1")
	if err != nil {
		t.Fatal(err)
	}
	if s.FusedGroups() != 1 {
		t.Fatalf("scheduled %d fused groups, want 1", s.FusedGroups())
	}

	// Wait for the fused pass to actually start before withdrawing.
	deadline := time.Now().Add(5 * time.Second)
	for s.Status(false).State == "queued" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Cancel()
	if _, err := s.Wait(context.Background()); err == nil {
		t.Fatal("canceled fused sweep returned a result")
	}
	if st := s.Status(false); st.State != "canceled" {
		t.Errorf("state %s after cancel, want canceled", st.State)
	}

	// Every member retires exactly once, as a canceled fused execution.
	cells := s.Cells()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if byKey := col.byKey(); len(byKey) >= len(cells) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	byKey := col.byKey()
	for _, c := range cells {
		trs := byKey[c.Key]
		if len(trs) != 1 {
			t.Fatalf("cell %s retired %d times, want exactly once", c.Key, len(trs))
		}
		tr := trs[0]
		if tr.Kind != sim.KindFused {
			t.Errorf("cell %s retired with kind %q, want %q", c.Key, tr.Kind, sim.KindFused)
		}
		if tr.Origin != "req-cancel-1" {
			t.Errorf("cell %s retired with origin %q", c.Key, tr.Origin)
		}
		if tr.Disposition != engine.DispositionExecuted || tr.State != engine.Canceled {
			t.Errorf("cell %s retired as %s/%v, want executed/canceled", c.Key, tr.Disposition, tr.State)
		}
		if tr.Err == nil || !errors.Is(tr.Err, context.Canceled) {
			t.Errorf("cell %s retired with err %v", c.Key, tr.Err)
		}
	}
	// The per-cell status JSON mirrors the same story.
	for _, cs := range s.Status(true).Cell {
		if cs.State != "canceled" {
			t.Errorf("cell %d status %s, want canceled", cs.Index, cs.State)
		}
		if cs.Error == "" {
			t.Errorf("cell %d lost its cancellation error", cs.Index)
		}
	}
}

// TestFusedProgressMonotone guards against snapshot tear in fused group
// progress: while the fused pass runs, every member cell's Done must
// move monotonically and never exceed its Total, and the aggregate
// fraction must stay in [0, 1].
func TestFusedProgressMonotone(t *testing.T) {
	r := testRunner(t)
	spec := Spec{
		Workloads:  []string{"Barnes"},
		Filters:    fusedAxis(),
		FilterMode: ModeEach,
		Scale:      2,
	}
	s, err := Submit(r, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Wait(context.Background())
		done <- err
	}()

	prev := make(map[int]uint64)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range s.Status(true).Cell {
				if c.State != "done" || c.Done != c.Total {
					t.Errorf("finished cell %d: %s %d/%d", i, c.State, c.Done, c.Total)
				}
			}
			return
		default:
		}
		st := s.Status(true)
		if st.Fraction < 0 || st.Fraction > 1 {
			t.Fatalf("aggregate fraction %v out of range", st.Fraction)
		}
		for _, c := range st.Cell {
			if c.Total > 0 && c.Done > c.Total {
				t.Fatalf("cell %d progress %d exceeds total %d", c.Index, c.Done, c.Total)
			}
			if last, ok := prev[c.Index]; ok && c.Done < last {
				t.Fatalf("cell %d progress went backwards: %d after %d", c.Index, c.Done, last)
			}
			prev[c.Index] = c.Done
		}
	}
}

// TestFusedGroupPlanning pins the planner's grouping rules directly:
// fusion applies exactly to cells agreeing on everything but filters.
func TestFusedGroupPlanning(t *testing.T) {
	spec := Spec{
		Workloads:  []string{"Lu", "ch"},
		Machines:   []Machine{{}, {CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2}},
		Filters:    []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"},
		FilterMode: ModeEach,
		Scale:      0.02,
		Repeat:     2,
	}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	norm := spec.normalize()
	groups := planGroups(norm, cells)
	// One group per (workload, machine, repeat); each holds the 3 filters.
	if want := 2 * 2 * 2; len(groups) != want {
		t.Fatalf("%d groups, want %d", len(groups), want)
	}
	for _, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group %v has %d members, want 3 (one per filter)", g, len(g))
		}
		first := cells[g[0]]
		for _, i := range g[1:] {
			c := cells[i]
			if c.Workload != first.Workload || c.Machine != first.Machine || c.Repeat != first.Repeat {
				t.Errorf("group mixes coordinates: %+v vs %+v", first, c)
			}
			if strings.Join(c.Filters, ",") == strings.Join(first.Filters, ",") {
				t.Errorf("group repeats filter set %v", c.Filters)
			}
		}
	}

	// Bank mode has one cell per (workload, machine, repeat): nothing to
	// fuse, every group is a singleton.
	bank := spec
	bank.FilterMode = ModeBank
	cells, err = bank.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range planGroups(bank.normalize(), cells) {
		if len(g) != 1 {
			t.Errorf("bank-mode group %v not a singleton", g)
		}
	}

	// NoFuse forces singletons regardless.
	noFuse := norm
	noFuse.NoFuse = true
	cells, err = spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range planGroups(noFuse, cells) {
		if len(g) != 1 {
			t.Errorf("NoFuse group %v not a singleton", g)
		}
	}
}
