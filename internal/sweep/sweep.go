package sweep

import (
	"context"
	"fmt"
	"time"

	"jetty/internal/engine"
	"jetty/internal/sim"
)

// Sweep is one submitted sweep: every cell scheduled on the engine, with
// per-cell status observable while it runs. Build one with Submit.
type Sweep struct {
	spec   Spec
	cells  []Cell
	origin string
	tenant string
	jobs   []*engine.Job
	fused  int // fused group tasks submitted (multi-cell groups)
}

// Submit expands the spec and schedules every cell on the runner's
// engine. Submission never blocks on the work itself; identical cells
// (within this sweep, across sweeps, or against past experiments) are
// deduplicated by the engine's in-flight coalescing and result cache.
func Submit(r *sim.Runner, spec Spec, traces TraceResolver) (*Sweep, error) {
	return SubmitOrigin(r, spec, traces, "")
}

// SubmitOrigin is Submit with a correlation token (jettyd passes the
// submitting HTTP request's ID) stamped onto every cell's engine task,
// so cell telemetry ties back to the request that started the sweep.
func SubmitOrigin(r *sim.Runner, spec Spec, traces TraceResolver, origin string) (*Sweep, error) {
	return SubmitAs(r, spec, traces, origin, "")
}

// SubmitAs is SubmitOrigin with a tenant identity stamped onto every
// cell's engine task, so the engine's fair-share queue schedules the
// sweep's cells under the submitting tenant and cell telemetry carries
// the tenant label. Empty means the default tenant.
func SubmitAs(r *sim.Runner, spec Spec, traces TraceResolver, origin, tenant string) (*Sweep, error) {
	cells, err := spec.Expand(traces)
	if err != nil {
		return nil, err
	}
	s := &Sweep{spec: spec.normalize(), cells: cells, origin: origin, tenant: tenant}
	s.jobs = make([]*engine.Job, len(cells))
	jobs, fused := scheduleCells(r, s.spec, cells, planGroups(s.spec, cells), origin, tenant)
	for i, j := range jobs {
		s.jobs[i] = j
	}
	s.fused = fused
	return s, nil
}

// scheduleCells submits the given groups of cells on the engine,
// returning the jobs keyed by cell index and the count of multi-cell
// fused groups. Each group must share one reference stream (the
// planGroups contract); singleton groups schedule per cell.
func scheduleCells(r *sim.Runner, spec Spec, cells []Cell, groups [][]int, origin, tenant string) (map[int]*engine.Job, int) {
	jobs := make(map[int]*engine.Job, len(cells))
	fused := 0
	opt := sim.SampleOptions{Interval: spec.Interval}
	for _, group := range groups {
		if len(group) == 1 {
			// Cells carry the "sweep" task kind so jettyd's per-kind latency
			// histograms separate cell durations from one-off experiment runs.
			i := group[0]
			c := cells[i]
			var t engine.Task
			switch {
			case c.trace != nil && opt.Interval > 0:
				t = sim.SampledTraceTask(*c.trace, c.cfg, opt)
			case c.trace != nil:
				t = sim.TraceTask(*c.trace, c.cfg)
			case opt.Interval > 0:
				t = sim.SampledTask(c.spec, c.cfg, opt)
			default:
				t = sim.Task(c.spec, c.cfg)
			}
			t.Kind = sim.KindSweep
			t.Origin = origin
			t.Tenant = tenant
			jobs[i] = r.Engine().Submit(t)
			continue
		}
		// Every cell in this group measures the same reference stream on
		// the same machine — only the observer bank differs — so the whole
		// group fuses onto one simulation pass (see plan.go). Member keys
		// are the cells' own per-cell content addresses: the engine caches
		// each member under the key a per-cell run would use, so fused and
		// per-cell sweeps interoperate through the cache transparently.
		members := make([]sim.FusedMember, len(group))
		for k, i := range group {
			members[k] = sim.FusedMember{Key: cells[i].Key, Bank: cells[i].cfg.Filters}
		}
		lead := cells[group[0]]
		base := lead.cfg.WithoutFilters()
		var g engine.GroupTask
		if lead.trace != nil {
			g = sim.FusedTraceGroup(*lead.trace, base, members, opt)
		} else {
			g = sim.FusedAppGroup(lead.spec, base, members, opt)
		}
		g.Origin = origin
		g.Tenant = tenant
		groupJobs := r.Engine().SubmitGroup(g)
		for k, i := range group {
			jobs[i] = groupJobs[k]
		}
		fused++
	}
	return jobs, fused
}

// CellSet is a scheduled subset of a sweep's cells: a cluster worker's
// share of a distributed sweep. The subset replans fusion among its own
// members (cells sharing a reference stream still fuse even when the
// coordinator split their siblings across other workers).
type CellSet struct {
	cells []Cell // requested subset, in request order
	jobs  []*engine.Job
	fused int
}

// SubmitCells expands spec and schedules only the cells at the given
// expansion indices. Indices must be in range and strictly ascending
// (the coordinator dispatches planned units, which are ascending by
// construction). Identical cells dedup against the engine's cache and
// in-flight work exactly like whole-sweep submission.
func SubmitCells(r *sim.Runner, spec Spec, traces TraceResolver, origin, tenant string, indices []int) (*CellSet, error) {
	all, err := spec.Expand(traces)
	if err != nil {
		return nil, err
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("sweep: no cell indices")
	}
	subset := make([]Cell, len(indices))
	for k, i := range indices {
		if i < 0 || i >= len(all) {
			return nil, fmt.Errorf("sweep: cell index %d out of range [0, %d)", i, len(all))
		}
		if k > 0 && i <= indices[k-1] {
			return nil, fmt.Errorf("sweep: cell indices must be strictly ascending")
		}
		subset[k] = all[i]
	}
	norm := spec.normalize()
	cs := &CellSet{cells: subset}
	cs.jobs = make([]*engine.Job, len(subset))
	jobs, fused := scheduleCells(r, norm, subset, planGroups(norm, subset), origin, tenant)
	for k, j := range jobs {
		cs.jobs[k] = j
	}
	cs.fused = fused
	return cs, nil
}

// Cells returns the scheduled subset in request order.
func (cs *CellSet) Cells() []Cell { return cs.cells }

// FusedGroups returns how many multi-cell fused group tasks the subset
// scheduled.
func (cs *CellSet) FusedGroups() int { return cs.fused }

// Unfinished reports whether any cell is still queued or running.
func (cs *CellSet) Unfinished() bool {
	for _, j := range cs.jobs {
		if !j.State().Terminal() {
			return true
		}
	}
	return false
}

// UnfinishedCells counts cells still queued or running.
func (cs *CellSet) UnfinishedCells() int {
	n := 0
	for _, j := range cs.jobs {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}

// Cancel withdraws every cell's handle.
func (cs *CellSet) Cancel() {
	for _, j := range cs.jobs {
		j.Cancel()
	}
}

// Wait blocks until every cell finishes and returns results aligned
// with Cells(). On error the remaining handles are released.
func (cs *CellSet) Wait(ctx context.Context) ([]sim.AppResult, error) {
	results := make([]sim.AppResult, len(cs.jobs))
	var firstErr error
	for k, j := range cs.jobs {
		if firstErr != nil {
			j.Cancel()
			continue
		}
		v, err := j.Wait(ctx)
		if err != nil {
			j.Cancel()
			c := cs.cells[k]
			firstErr = fmt.Errorf("sweep: cell %d (%s on %s): %w", c.Index, c.Workload, c.Machine, err)
			continue
		}
		results[k] = v.(sim.AppResult).Clone()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Dispositions returns each cell's engine disposition ("executed",
// "cache_hit", "coalesced"; empty while still running), aligned with
// Cells(). A cluster worker reports these so the coordinator can tell
// L1 cache hits from fresh computation.
func (cs *CellSet) Dispositions() []string {
	out := make([]string, len(cs.jobs))
	for k, j := range cs.jobs {
		out[k] = j.Status().Disposition
	}
	return out
}

// FusedGroups returns how many multi-cell fused group tasks the sweep
// scheduled (0 when every cell ran individually).
func (s *Sweep) FusedGroups() int { return s.fused }

// Spec returns the (normalized) spec the sweep runs.
func (s *Sweep) Spec() Spec { return s.spec }

// Tenant returns the tenant identity the sweep was submitted under (""
// for the default tenant).
func (s *Sweep) Tenant() string { return s.tenant }

// Cells returns the expanded cells in submission order.
func (s *Sweep) Cells() []Cell { return s.cells }

// CellStatus is one cell's progress snapshot, including the lifecycle
// timing breakdown (queue wait, run time, disposition) and the origin
// request ID that created the cell's execution.
type CellStatus struct {
	Index       int     `json:"index"`
	Workload    string  `json:"workload"`
	Machine     string  `json:"machine"`
	Repeat      int     `json:"repeat"`
	Key         string  `json:"key"`
	State       string  `json:"state"`
	Done        uint64  `json:"done"`
	Total       uint64  `json:"total"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	Disposition string  `json:"disposition,omitempty"`
	Origin      string  `json:"origin,omitempty"`
	Tenant      string  `json:"tenant,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	RunMS       float64 `json:"run_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// Status is the aggregate progress snapshot of a sweep.
type Status struct {
	Name      string       `json:"name,omitempty"`
	Tenant    string       `json:"tenant,omitempty"`
	State     string       `json:"state"` // queued|running|done|failed|canceled
	Cells     int          `json:"cells"`
	Finished  int          `json:"finished"`
	CacheHits int          `json:"cache_hits"`
	Done      uint64       `json:"done"`
	Total     uint64       `json:"total"`
	Fraction  float64      `json:"fraction"`
	Cell      []CellStatus `json:"cell_status,omitempty"`
	// PartialMetrics are per-filter metrics folded over only the cells
	// finished so far — the streaming partial aggregate a cluster
	// coordinator exposes while a distributed sweep runs. Empty on
	// single-process sweeps (the full Result lands atomically there).
	PartialMetrics []Metric `json:"partial_metrics,omitempty"`
}

// Status snapshots every cell and aggregates. detailed includes the
// per-cell slice; false keeps the snapshot allocation-light for hot
// polling loops.
func (s *Sweep) Status(detailed bool) Status {
	out := Status{Name: s.spec.Name, Tenant: s.tenant, Cells: len(s.cells)}
	counts := map[engine.State]int{}
	for i, j := range s.jobs {
		js := j.Status()
		counts[js.State]++
		out.Done += js.Done
		out.Total += js.Total
		if js.State.Terminal() {
			out.Finished++
		}
		if js.CacheHit {
			out.CacheHits++
		}
		if detailed {
			c := s.cells[i]
			out.Cell = append(out.Cell, CellStatus{
				Index:       c.Index,
				Workload:    c.Workload,
				Machine:     c.Machine,
				Repeat:      c.Repeat,
				Key:         js.Key,
				State:       js.State.String(),
				Done:        js.Done,
				Total:       js.Total,
				CacheHit:    js.CacheHit,
				Disposition: js.Disposition,
				Origin:      js.Origin,
				Tenant:      js.Tenant,
				QueueWaitMS: durationMS(js.QueueWait),
				RunMS:       durationMS(js.Run),
				Error:       js.Err,
			})
		}
	}
	switch {
	case counts[engine.Failed] > 0:
		out.State = "failed"
	case counts[engine.Canceled] > 0:
		out.State = "canceled"
	case counts[engine.Running] > 0 || (counts[engine.Queued] > 0 && counts[engine.Done] > 0):
		out.State = "running"
	case counts[engine.Queued] > 0:
		out.State = "queued"
	default:
		out.State = "done"
	}
	if out.Total > 0 {
		out.Fraction = float64(out.Done) / float64(out.Total)
	}
	if out.State == "done" {
		out.Fraction = 1
	}
	return out
}

// durationMS renders a duration as fractional milliseconds for JSON.
func durationMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Unfinished reports whether any cell is still queued or running (the
// service's admission accounting; allocates nothing).
func (s *Sweep) Unfinished() bool {
	for _, j := range s.jobs {
		if !j.State().Terminal() {
			return true
		}
	}
	return false
}

// UnfinishedCells counts cells still queued or running (the service's
// per-tenant cell-quota accounting; allocates nothing).
func (s *Sweep) UnfinishedCells() int {
	n := 0
	for _, j := range s.jobs {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}

// Cancel withdraws every cell's handle. Cells shared with other
// submitters keep running for them; exclusive cells stop.
func (s *Sweep) Cancel() {
	for _, j := range s.jobs {
		j.Cancel()
	}
}

// Wait blocks until every cell finishes (or ctx expires / a cell fails;
// then the remaining handles are released) and folds the results.
func (s *Sweep) Wait(ctx context.Context) (*Result, error) {
	results := make([]sim.AppResult, len(s.jobs))
	var firstErr error
	for i, j := range s.jobs {
		if firstErr != nil {
			j.Cancel()
			continue
		}
		v, err := j.Wait(ctx)
		if err != nil {
			j.Cancel()
			c := s.cells[i]
			firstErr = fmt.Errorf("sweep: cell %d (%s on %s): %w", c.Index, c.Workload, c.Machine, err)
			continue
		}
		results[i] = v.(sim.AppResult).Clone()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return fold(s.spec, s.cells, results), nil
}

// Run is Submit + Wait: the synchronous entry point (cmd/jettysweep's
// core, and the simplest way to run a study from Go).
func Run(ctx context.Context, r *sim.Runner, spec Spec, traces TraceResolver) (*Result, error) {
	s, err := Submit(r, spec, traces)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx)
}
