// Package tables renders fixed-width text tables shaped like the
// paper's tables and figure data series, so every experiment binary
// prints rows that can be compared against the publication side by
// side.
//
// A Table is built fluently — New(title, headers...).Row(...).Note(...)
// — and rendered with String: columns are sized to content, float64
// cells print with one decimal (the paper's precision), and notes become
// footnote lines. cmd/paper, cmd/jettysim and the sweep renderers all
// print through it, which keeps "compare against the publication" a
// side-by-side diff rather than a formatting exercise.
package tables
