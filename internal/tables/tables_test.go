package tables

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Table X: demo", "App", "Value").
		Row("Barnes", 47.1).
		Row("Unstructured", 304.8).
		Note("source: %s", "paper")
	out := tb.String()
	for _, want := range []string{"Table X: demo", "App", "Value", "Barnes", "47.1", "Unstructured", "304.8", "source: paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("want 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestColumnsAligned(t *testing.T) {
	out := New("", "A", "LongHeader").Row("xxxxxxxx", "y").String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data row must have aligned second column start.
	hIdx := strings.Index(lines[0], "LongHeader")
	dIdx := strings.Index(lines[2], "y")
	if hIdx != dIdx {
		t.Errorf("columns misaligned: header at %d, data at %d\n%s", hIdx, dIdx, out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.756); got != "75.6%" {
		t.Errorf("Pct = %q", got)
	}
	if got := PctInt(0.756); got != "76%" {
		t.Errorf("PctInt = %q", got)
	}
	if got := Millions(47_100_000); got != "47.1" {
		t.Errorf("Millions = %q", got)
	}
	if got := MB(57 << 20); got != "57.0" {
		t.Errorf("MB = %q", got)
	}
}

func TestSeries(t *testing.T) {
	out := Series("EJ-32x4", []float64{0.45, 0.5})
	if !strings.Contains(out, "EJ-32x4") || !strings.Contains(out, "45.0%") || !strings.Contains(out, "50.0%") {
		t.Errorf("Series = %q", out)
	}
}
