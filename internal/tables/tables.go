package tables

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// PctInt formats a fraction as a whole-percent string (paper style).
func PctInt(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// Millions formats a count in millions with one decimal.
func Millions(n uint64) string { return fmt.Sprintf("%.1f", float64(n)/1e6) }

// MB formats a byte count in megabytes with one decimal.
func MB(n uint64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }

// Series renders one named data series (a figure's bar group) as a line:
// "name: v1 v2 v3 ..." with percent formatting.
func Series(name string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", name)
	for _, v := range values {
		fmt.Fprintf(&b, " %6.1f%%", v*100)
	}
	return b.String()
}
