// Package jetty is a from-scratch Go reproduction of "JETTY: Filtering
// Snoops for Reduced Energy Consumption in SMP Servers" (Moshovos, Memik,
// Falsafi, Choudhary — HPCA 2001).
//
// JETTY is a small, cache-like structure placed between the shared bus and
// the backside of each processor's L2 in a snoopy bus-based SMP. Every
// incoming snoop probes it first; the JETTY either guarantees the block is
// not cached locally — skipping the energy-hungry L2 tag probe — or lets
// the snoop proceed. The repository contains the three filter families of
// the paper (exclude, include, hybrid), the complete simulated substrate
// (MOESI bus protocol, subblocked L2, write-back L1, write buffers,
// synthetic SPLASH-2-like workloads), the Kamble–Ghose energy model with
// CACTI-lite banking, and a harness that regenerates every table and
// figure of the paper's evaluation — executed on a concurrent experiment
// engine (internal/engine: worker pool, cancellation, content-addressed
// result cache) and servable to many clients at once via cmd/jettyd, an
// HTTP/JSON experiment service.
//
// Experiments are trace-driven end to end: the workload library
// (internal/workload — the Table 2 suite plus server scenarios like
// WebServer and Database) generates deterministic reference streams, and
// the streaming trace subsystem (internal/trace, TRACES.md) persists any
// stream as a versioned JTRC file that can be inspected (cmd/tracecat),
// replayed bit-identically (jettysim -trace), or uploaded to jettyd and
// replayed under any filter configuration, cached by content address.
//
// Studies — cross-products of workloads × machines × JETTY
// configurations — run through the declarative sweep subsystem
// (internal/sweep): cmd/jettysweep expands a JSON spec into cells,
// schedules them on the engine (deduplicated by content address), and
// folds the results into paper-style aggregates; jettyd exposes the same
// engine as POST/GET /v1/sweeps.
//
// Every run can also be observed in time, not just in aggregate: the
// interval-sampling layer (internal/metrics) splits a run into
// fixed-size windows of snoop, coverage and energy activity with zero
// steady-state allocation cost, phased library scenarios
// (PhasedWebServer, PhasedOLTP) exercise genuinely time-varying
// behaviour, and jettyd streams windows live over SSE
// (/v1/experiments/{id}/live) while exposing service counters at
// /metrics.
//
// Start with examples/quickstart, or run:
//
//	go run ./cmd/paper -exp all
//	go run ./cmd/jettyd
//
// See DESIGN.md for the architecture, EXPERIMENTS.md for measured
// results versus the paper, and TRACES.md for the trace format.
package jetty
