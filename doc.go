// Package jetty is a from-scratch Go reproduction of "JETTY: Filtering
// Snoops for Reduced Energy Consumption in SMP Servers" (Moshovos, Memik,
// Falsafi, Choudhary — HPCA 2001).
//
// JETTY is a small, cache-like structure placed between the shared bus and
// the backside of each processor's L2 in a snoopy bus-based SMP. Every
// incoming snoop probes it first; the JETTY either guarantees the block is
// not cached locally — skipping the energy-hungry L2 tag probe — or lets
// the snoop proceed. The repository contains the three filter families of
// the paper (exclude, include, hybrid), the complete simulated substrate
// (MOESI bus protocol, subblocked L2, write-back L1, write buffers,
// synthetic SPLASH-2-like workloads), the Kamble–Ghose energy model with
// CACTI-lite banking, and a harness that regenerates every table and
// figure of the paper's evaluation — executed on a concurrent experiment
// engine (internal/engine: worker pool, cancellation, content-addressed
// result cache) and servable to many clients at once via cmd/jettyd, an
// HTTP/JSON experiment service.
//
// Start with examples/quickstart, or run:
//
//	go run ./cmd/paper -exp all
//	go run ./cmd/jettyd
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for measured
// results versus the paper.
package jetty
