module jetty

go 1.24
