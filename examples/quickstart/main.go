// Quickstart: build the paper's 4-way SMP, attach a hybrid JETTY to every
// processor, run one of the benchmark workloads and print what the filter
// achieved. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

func main() {
	// The machine of §4.1: four CPUs, 64KB direct-mapped L1s, 1MB 4-way
	// subblocked L2s, MOESI over a snoopy bus — with the paper's best
	// hybrid JETTY (a 4x1K-entry include part plus a 32x4 exclude part)
	// attached between each L2 and the bus.
	best := jetty.MustParse("HJ(IJ-10x4x7,EJ-32x4)")
	cfg := smp.PaperConfig(4).WithFilters(best)

	// One of the ten Table-2 workloads, shortened for a quick run.
	spec, err := workload.ByName("Ocean")
	if err != nil {
		log.Fatal(err)
	}
	spec.Accesses = 400_000

	res, err := sim.RunApp(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a 4-way SMP: %d references\n", spec.Name, res.Refs)
	fmt.Printf("  snoop-induced L2 tag probes: %d (%.1f%% would miss)\n",
		res.Counts.Snoops, res.SnoopMissOfSnoops*100)

	cov, _ := res.CoverageOf(best.Name())
	fmt.Printf("  %s filtered %.1f%% of those would-miss probes\n", best.Name(), cov*100)

	red := sim.EnergyReductions(res, cfg, energy.Tech180(), energy.SerialTagData)[0]
	fmt.Printf("  L2 energy saved: %.1f%% of snoop-induced energy, %.1f%% of all L2 energy\n",
		red.OverSnoops*100, red.OverAll*100)
	fmt.Println("\nThe filter never lied: a JETTY may only say \"not cached\" when that is guaranteed.")
}
