// Explorer: sweeps the JETTY design space beyond the paper's evaluated
// points — exclude geometries, include geometries, the include skip-bits
// (index overlap) ablation, and hybrid pairings — and prints a
// coverage-vs-storage-vs-energy table so a designer can pick a point on
// the Pareto front. All configurations are measured in one simulation
// pass per workload (filtering never changes protocol outcomes).
package main

import (
	"fmt"
	"log"
	"sort"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

func main() {
	names := []string{
		// Exclude family.
		"EJ-8x2", "EJ-16x2", "EJ-32x4", "EJ-64x4",
		"VEJ-32x4-4", "VEJ-32x4-8",
		// Include family, including a skip-bits (overlap) ablation of
		// IJ-8x4xS: the paper asserts partially-overlapped indexes (S<E)
		// work better; measure it.
		"IJ-6x5x6", "IJ-8x4x4", "IJ-8x4x7", "IJ-8x4x8", "IJ-9x4x7", "IJ-10x4x7",
		// Hybrids around the paper's sweet spot.
		"HJ(IJ-8x4x7,EJ-16x2)", "HJ(IJ-9x4x7,EJ-32x4)", "HJ(IJ-10x4x7,EJ-32x4)",
	}
	configs, err := jetty.ParseAll(names)
	if err != nil {
		log.Fatal(err)
	}
	cfg := smp.PaperConfig(4).WithFilters(configs...)

	// A medium-sharing workload keeps both filter families honest.
	apps := []string{"Barnes", "Em3d", "Unstructured"}
	type point struct {
		name     string
		storage  int // bits
		coverage float64
		overAll  float64
	}
	points := make(map[string]*point)
	tech := energy.Tech180()

	for _, app := range apps {
		sp, err := workload.ByName(app)
		if err != nil {
			log.Fatal(err)
		}
		sp.Accesses = 800_000
		res, err := sim.RunApp(sp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		reds := sim.EnergyReductions(res, cfg, tech, energy.SerialTagData)
		for i, name := range res.FilterNames {
			p := points[name]
			if p == nil {
				p = &point{name: name, storage: storageBits(configs[i], cfg)}
				points[name] = p
			}
			p.coverage += res.Coverage[i] / float64(len(apps))
			p.overAll += reds[i].OverAll / float64(len(apps))
		}
	}

	list := make([]*point, 0, len(points))
	for _, p := range points {
		list = append(list, p)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].storage < list[j].storage })

	fmt.Printf("design-space sweep over %v (coverage/energy averaged)\n\n", apps)
	fmt.Printf("%-24s %10s %10s %12s %7s\n", "config", "bits", "coverage", "energy -%", "pareto")
	var bestCov float64
	for _, p := range list {
		pareto := ""
		if p.coverage > bestCov {
			bestCov = p.coverage
			pareto = "*"
		}
		fmt.Printf("%-24s %10d %9.1f%% %11.1f%% %6s\n", p.name, p.storage, p.coverage*100, p.overAll*100, pareto)
	}
	fmt.Println("\n'*' marks the coverage Pareto front in storage order. Note the skip-bits")
	fmt.Println("ablation IJ-8x4x{4,7,8}: the paper's partially-overlapped indexes (S=7 < E=8)")
	fmt.Println("versus aligned (S=8) and heavily-overlapped (S=4) index extraction.")
}

// storageBits returns the total storage of a configuration.
func storageBits(c jetty.Config, cfg smp.Config) int {
	bits := 0
	if c.Exclude != nil {
		org := c.Exclude.EnergyOrg(cfg.L2.Geom.UnitAddrBits())
		bits += org.Sets * org.Ways * (org.TagBits + org.VectorBits)
	}
	if c.Include != nil {
		row := c.Include.Storage(jetty.CntBitsFor(cfg.L2.Blocks()))
		bits += row.TotalBits
	}
	return bits
}
