// Service example: drive the jettyd HTTP API as a client would. To stay
// self-contained it starts the service in-process on a loopback port,
// then talks to it over real HTTP: submit an experiment, poll its
// progress, fetch the finished tables — and submit the same experiment
// again to show the content-addressed cache answering instantly.
//
// Against a standalone daemon (`go run ./cmd/jettyd`), point base at it
// and delete the in-process setup.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"jetty/internal/service"
)

func main() {
	// In-process jettyd on a loopback port.
	svc := service.New(service.Options{})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, svc.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("jettyd listening on %s\n\n", base)

	// Submit: two Table 2 applications at a tenth of the paper's access
	// budget, with the paper's best hybrid and its exclude part attached.
	req := map[string]any{
		"apps":    []string{"Barnes", "Ocean"},
		"scale":   0.1,
		"filters": []string{"HJ(IJ-10x4x7,EJ-32x4)", "EJ-32x4"},
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Jobs  []struct {
			App string `json:"app"`
			Key string `json:"key"`
		} `json:"jobs"`
	}
	post(base+"/v1/experiments", req, &status)
	fmt.Printf("submitted %s with %d jobs:\n", status.ID, len(status.Jobs))
	for _, j := range status.Jobs {
		fmt.Printf("  %-8s key %s...\n", j.App, j.Key[:16])
	}

	// Poll until done.
	var poll struct {
		State    string  `json:"state"`
		Fraction float64 `json:"fraction"`
	}
	for {
		get(base+"/v1/experiments/"+status.ID, &poll)
		fmt.Printf("  %s: %.0f%%\n", poll.State, poll.Fraction*100)
		if poll.State == "done" || poll.State == "failed" {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if poll.State != "done" {
		log.Fatalf("experiment ended %s", poll.State)
	}

	// Fetch the finished tables.
	var result struct {
		Tables map[string]string `json:"tables"`
	}
	get(base+"/v1/experiments/"+status.ID+"/result", &result)
	fmt.Printf("\n%s\n%s", result.Tables["table2"], result.Tables["coverage"])

	// Resubmit the identical experiment: the engine's content-addressed
	// cache serves it without re-simulating.
	start := time.Now()
	post(base+"/v1/experiments", req, &status)
	get(base+"/v1/experiments/"+status.ID, &poll)
	fmt.Printf("\nidentical resubmission (%s) finished %q in %v — served from cache\n",
		status.ID, poll.State, time.Since(start).Round(time.Millisecond))
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		log.Fatalf("%s: HTTP %d", resp.Request.URL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
