// Producer/consumer walkthrough: drives the simulator with a hand-built
// reference stream (no workload generator) to show, step by step, how the
// sharing pattern of §3.1 creates snoop locality and how the exclude-JETTY
// capitalizes on it. CPU 1 produces a buffer that CPU 2 consumes; CPUs 0
// and 3 never touch it — their JETTYs learn after one snoop miss each and
// filter everything that follows.
package main

import (
	"fmt"
	"log"

	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/trace"
)

func main() {
	ej := jetty.MustParse("EJ-32x4")
	cfg := smp.PaperConfig(4).WithFilters(ej)
	cfg.WBEntries = 0 // act on every store immediately: clearer narration
	sys := smp.New(cfg)

	const bufBase = 0x10_0000
	const blocks = 16
	const rounds = 8

	produce := func(round int) {
		for b := 0; b < blocks; b++ {
			a := uint64(bufBase + b*64)
			sys.Step(1, trace.Ref{Op: trace.Write, Addr: a})      // subblock 0
			sys.Step(1, trace.Ref{Op: trace.Write, Addr: a + 32}) // subblock 1
		}
	}
	consume := func(round int) {
		for b := 0; b < blocks; b++ {
			a := uint64(bufBase + b*64)
			sys.Step(2, trace.Ref{Op: trace.Read, Addr: a})
			sys.Step(2, trace.Ref{Op: trace.Read, Addr: a + 32})
		}
	}

	report := func(tag string) {
		c := sys.EnergyCounts()
		fc := sys.FilterCounts(0)
		fmt.Printf("%-16s snoops %5d (miss %5d)   EJ filtered %5d (coverage %5.1f%%)\n",
			tag, c.Snoops, c.SnoopMisses, fc.Filtered,
			100*float64(fc.Filtered)/float64(max(c.SnoopMisses, 1)))
	}

	fmt.Println("producer/consumer sharing between CPU1 (writes) and CPU2 (reads);")
	fmt.Println("CPU0 and CPU3 are innocent bystanders whose L2 tags every snoop would probe.")
	fmt.Println()
	for round := 0; round < rounds; round++ {
		produce(round)
		consume(round)
		report(fmt.Sprintf("after round %d:", round+1))
	}

	if err := sys.CheckFilterSafety(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CheckCoherence(); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Every snoop probed CPU0/CPU3's filters; after the first round their EJs")
	fmt.Println("know the buffer is absent, so the bystanders' L2 tag arrays stay dark —")
	fmt.Println("that is the energy the paper saves. (Safety and MOESI invariants verified.)")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
