// Throughput engine: the paper's §1 claim is that JETTY's savings are
// larger when an SMP runs independent programs per CPU ("throughput
// engine") than when it runs one parallel program — because with disjoint
// address spaces essentially every snoop misses everywhere. This example
// measures that claim by running the multiprogrammed workload and a
// heavily-sharing parallel workload side by side.
package main

import (
	"fmt"
	"log"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

func main() {
	best := jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")
	cfg := smp.PaperConfig(4).WithFilters(best)

	throughput := workload.Throughput()
	throughput.Accesses = 800_000

	parallel, err := workload.ByName("Unstructured") // heaviest sharing in the suite
	if err != nil {
		log.Fatal(err)
	}
	parallel.Accesses = 800_000

	fmt.Printf("%-22s %12s %14s %10s %16s %14s\n",
		"workload", "snoop miss%", "miss% of all", "coverage", "energy -% snoop", "energy -% all")
	for _, sp := range []workload.Spec{throughput, parallel} {
		res, err := sim.RunApp(sp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cov, _ := res.CoverageOf(best.Name())
		red := sim.EnergyReductions(res, cfg, energy.Tech180(), energy.SerialTagData)[0]
		fmt.Printf("%-22s %11.1f%% %13.1f%% %9.1f%% %15.1f%% %13.1f%%\n",
			sp.Name, res.SnoopMissOfSnoops*100, res.SnoopMissOfAll*100,
			cov*100, red.OverSnoops*100, red.OverAll*100)
	}
	fmt.Println("\nIndependent programs never hold each other's data: snoops miss ~100%")
	fmt.Println("remotely, the filters converge almost perfectly, and the savings exceed")
	fmt.Println("the parallel-program case — exactly the paper's throughput-engine argument.")
}
