// Benchmarks, one per table and figure of the paper. Each benchmark runs
// the experiment (at a reduced workload scale so the suite stays fast) and
// reports the headline metric via b.ReportMetric, so `go test -bench .`
// doubles as a quick reproduction record:
//
//	coverage%      suite-average snoop-miss coverage of the named filter
//	reduction%     suite-average energy reduction
//	fraction%      snoop-miss share (Tables 2/3 summaries)
//
// Run the full-scale numbers with `go run ./cmd/paper -exp all`.
package jetty_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"jetty/internal/analytic"
	"jetty/internal/energy"
	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/sweep"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// benchScale shortens the workload access budgets for benchmarking.
const benchScale = 0.2

// bestHybrid is the paper's best hybrid configuration (Fig. 5b), used as
// the headline filter for the hot-path benchmarks.
const bestHybrid = "HJ(IJ-10x4x7,EJ-32x4)"

// BenchmarkTable1 regenerates the Xeon power-breakdown table.
func BenchmarkTable1(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		for _, row := range analytic.XeonTable() {
			frac = row.L2FractionNoPads()
		}
	}
	b.ReportMetric(frac*100, "2MB-L2-share-%")
}

// BenchmarkFig2 regenerates both panels of Figure 2 (the Appendix-A
// analytical model) and reports the paper's headline point.
func BenchmarkFig2(b *testing.B) {
	tech := energy.Tech180()
	var head float64
	for i := 0; i < b.N; i++ {
		for _, bb := range []int{32, 64} {
			analytic.ComputeFigure2(tech, bb, 21)
		}
		head = analytic.PaperParams(tech, 32).Eval(0.5, 0.1).SnoopMissE
	}
	b.ReportMetric(head*100, "headline%(paper~33)")
}

// suiteOnce runs the benchmark suite once with the full figure filter
// bank; the result feeds several benchmarks below. It uses a private,
// cache-disabled engine so every b.N iteration really re-simulates —
// the shared DefaultRunner's result cache would otherwise turn all
// iterations after the first into cache lookups.
func suiteOnce(b *testing.B, cpus int, nsb bool) ([]sim.AppResult, smp.Config) {
	b.Helper()
	eng := engine.New(engine.Options{CacheEntries: -1})
	defer eng.Close()
	r := sim.NewRunner(eng)
	var (
		results []sim.AppResult
		cfg     smp.Config
		err     error
	)
	if nsb {
		results, cfg, err = r.PaperSuiteNSB(context.Background(), cpus, benchScale)
	} else {
		results, cfg, err = r.PaperSuite(context.Background(), cpus, benchScale)
	}
	if err != nil {
		b.Fatal(err)
	}
	return results, cfg
}

// avgCoverage returns the suite-average coverage of one configuration.
func avgCoverage(b *testing.B, results []sim.AppResult, name string) float64 {
	b.Helper()
	sum := 0.0
	for _, r := range results {
		cov, err := r.CoverageOf(name)
		if err != nil {
			b.Fatal(err)
		}
		sum += cov
	}
	return sum / float64(len(results))
}

// BenchmarkTable2 runs the workload characterization suite and reports the
// aggregate L2 local hit rate.
func BenchmarkTable2(b *testing.B) {
	var l2 float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		sum := 0.0
		for _, r := range results {
			sum += r.L2LocalHitRate
		}
		l2 = sum / float64(len(results))
	}
	b.ReportMetric(l2*100, "avg-L2-hit%(paper~58)")
}

// BenchmarkTable3 reports the snoop-miss fraction of all L2 accesses.
func BenchmarkTable3(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		sum := 0.0
		for _, r := range results {
			sum += r.SnoopMissOfAll
		}
		frac = sum / float64(len(results))
	}
	b.ReportMetric(frac*100, "snoopmiss-of-all%(paper55)")
}

// BenchmarkFig4aExcludeJetty reports the best exclude-JETTY's coverage.
func BenchmarkFig4aExcludeJetty(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		cov = avgCoverage(b, results, "EJ-32x4")
	}
	b.ReportMetric(cov*100, "EJ-32x4-coverage%(paper45)")
}

// BenchmarkFig4bVectorExcludeJetty reports the best VEJ's coverage.
func BenchmarkFig4bVectorExcludeJetty(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		cov = avgCoverage(b, results, "VEJ-32x4-8")
	}
	b.ReportMetric(cov*100, "VEJ-32x4-8-coverage%(paper~46)")
}

// BenchmarkFig5aIncludeJetty reports the best include-JETTY's coverage.
func BenchmarkFig5aIncludeJetty(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		cov = avgCoverage(b, results, "IJ-10x4x7")
	}
	b.ReportMetric(cov*100, "IJ-10x4x7-coverage%(paper57)")
}

// BenchmarkFig5bHybridJetty reports the paper's best hybrid's coverage.
func BenchmarkFig5bHybridJetty(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, false)
		cov = avgCoverage(b, results, "HJ(IJ-10x4x7,EJ-32x4)")
	}
	b.ReportMetric(cov*100, "bestHJ-coverage%(paper75.6)")
}

// BenchmarkTable4 regenerates the include-JETTY storage table.
func BenchmarkTable4(b *testing.B) {
	var bytes int
	for i := 0; i < b.N; i++ {
		for _, name := range jetty.Table4Configs {
			row := jetty.MustParse(name).Include.Storage(14)
			bytes = row.TotalBytes()
		}
	}
	b.ReportMetric(float64(bytes), "IJ-6x5x6-bytes")
}

// fig6Average computes the suite-average energy reduction of the paper's
// best hybrid for one mode.
func fig6Average(b *testing.B, results []sim.AppResult, cfg smp.Config, mode energy.Mode, overAll bool) float64 {
	b.Helper()
	tech := energy.Tech180()
	sum := 0.0
	for _, r := range results {
		for _, red := range sim.EnergyReductions(r, cfg, tech, mode) {
			if red.Filter != "HJ(IJ-10x4x7,EJ-32x4)" {
				continue
			}
			if overAll {
				sum += red.OverAll
			} else {
				sum += red.OverSnoops
			}
		}
	}
	return sum / float64(len(results))
}

// BenchmarkFig6SerialEnergy reports Figure 6(a)/(b): energy reductions
// with serial tag/data arrays.
func BenchmarkFig6SerialEnergy(b *testing.B) {
	var overSnoops, overAll float64
	for i := 0; i < b.N; i++ {
		results, cfg := suiteOnce(b, 4, false)
		overSnoops = fig6Average(b, results, cfg, energy.SerialTagData, false)
		overAll = fig6Average(b, results, cfg, energy.SerialTagData, true)
	}
	b.ReportMetric(overSnoops*100, "over-snoops%(paper56)")
	b.ReportMetric(overAll*100, "over-all%(paper30)")
}

// BenchmarkFig6ParallelEnergy reports Figure 6(c)/(d): energy reductions
// with parallel tag/data arrays.
func BenchmarkFig6ParallelEnergy(b *testing.B) {
	var overSnoops, overAll float64
	for i := 0; i < b.N; i++ {
		results, cfg := suiteOnce(b, 4, false)
		overSnoops = fig6Average(b, results, cfg, energy.ParallelTagData, false)
		overAll = fig6Average(b, results, cfg, energy.ParallelTagData, true)
	}
	b.ReportMetric(overSnoops*100, "over-snoops%(paper63)")
	b.ReportMetric(overAll*100, "over-all%(paper41)")
}

// BenchmarkNoSubblockSummary reproduces the §4.3 non-subblocked numbers.
func BenchmarkNoSubblockSummary(b *testing.B) {
	var miss, cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 4, true)
		sum := 0.0
		for _, r := range results {
			sum += r.SnoopMissOfSnoops
		}
		miss = sum / float64(len(results))
		cov = avgCoverage(b, results, "HJ(IJ-10x4x7,EJ-32x4)")
	}
	b.ReportMetric(miss*100, "snoopmiss%(paper68)")
	b.ReportMetric(cov*100, "bestHJ-coverage%(paper68)")
}

// BenchmarkEightWaySummary reproduces the §4.3 8-way SMP numbers.
func BenchmarkEightWaySummary(b *testing.B) {
	var frac, cov float64
	for i := 0; i < b.N; i++ {
		results, _ := suiteOnce(b, 8, false)
		sum := 0.0
		for _, r := range results {
			sum += r.SnoopMissOfAll
		}
		frac = sum / float64(len(results))
		cov = avgCoverage(b, results, "HJ(IJ-10x4x7,EJ-32x4)")
	}
	b.ReportMetric(frac*100, "snoopmiss-of-all%(paper76.4)")
	b.ReportMetric(cov*100, "coverage%(paper79)")
}

// BenchmarkThroughputEngine measures the §1 multiprogrammed claim.
func BenchmarkThroughputEngine(b *testing.B) {
	best := jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")
	cfg := smp.PaperConfig(4).WithFilters(best)
	var cov float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunApp(workload.Throughput().Scale(benchScale), cfg)
		if err != nil {
			b.Fatal(err)
		}
		c, _ := res.CoverageOf(best.Name())
		cov = c
	}
	b.ReportMetric(cov*100, "coverage%")
}

// The engine comparison: BenchmarkSuiteSerial is the one-goroutine
// reference; BenchmarkSuiteParallel runs the same suite through the
// internal/engine worker pool at increasing worker counts. The suite is
// embarrassingly parallel (ten independent seeded passes), so wall-clock
// time should drop near-linearly until the pool saturates the physical
// cores or the longest single app dominates. Compare with:
//
//	go test -bench 'BenchmarkSuite(Serial|Parallel)' -benchtime 2x .
//
// The result cache is disabled here so every iteration really
// re-simulates (with it on, iterations after the first are free).

// benchSuiteFilters is a representative small bank for the comparison.
func benchSuiteFilters() smp.Config {
	return smp.PaperConfig(4).WithFilters(
		jetty.MustParse("HJ(IJ-10x4x7,EJ-32x4)"),
		jetty.MustParse("EJ-32x4"),
	)
}

func BenchmarkSuiteSerial(b *testing.B) {
	cfg := benchSuiteFilters()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSuiteSerial(cfg, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteParallel(b *testing.B) {
	workers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	cfg := benchSuiteFilters()
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Options{Workers: w, CacheEntries: -1})
				r := sim.NewRunner(eng)
				if _, err := r.RunSuite(context.Background(), cfg, benchScale); err != nil {
					b.Fatal(err)
				}
				eng.Close()
			}
		})
	}
}

// BenchmarkSweep measures the sweep subsystem end to end: a 2×2×3
// cross-product expanded, scheduled on the engine and folded into
// aggregates. The cache is disabled so every iteration really simulates
// every cell; the reported metric is the sweep's best average coverage.
func BenchmarkSweep(b *testing.B) {
	spec := sweep.Spec{
		Name:      "bench",
		Workloads: []string{"Lu", "ch"},
		Machines:  []sweep.Machine{{}, {CPUs: 2}},
		Filters:   []string{"EJ-32x4", "IJ-9x4x7", "HJ(IJ-10x4x7,EJ-32x4)"},
		Scale:     benchScale * 0.5,
	}
	coverageCol := -1
	for i, c := range sweep.Columns {
		if c.Name == "coverage" {
			coverageCol = i
		}
	}
	if coverageCol < 0 {
		b.Fatal("no coverage column")
	}
	var best float64
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{CacheEntries: -1})
		r := sim.NewRunner(eng)
		res, err := sweep.Run(context.Background(), r, spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		eng.Close()
		groups := sweep.GroupBy(res.Metrics, sweep.ByFilter)
		top, err := sweep.BestBy(groups, "coverage")
		if err != nil {
			b.Fatal(err)
		}
		best = top.Columns[coverageCol].Mean
	}
	b.ReportMetric(best*100, "best-coverage%")
}

// BenchmarkSweepFused measures the fused sweep scheduler on its target
// shape: one workload on one machine swept across a 16-variant filter
// axis in "each" mode. The planner fuses all 16 cells onto a single
// simulation pass with every bank attached as concatenated observers;
// the per-cell sub forces the legacy scheduling (NoFuse) so the same
// spec pays 16 full passes, and the single sub is the floor — one
// simulation of the same workload with one filter attached, i.e. the
// cost a per-cell sweep pays for every one of its 16 cells.
// PERFORMANCE.md tracks fused ≤ 2× single. The cache is disabled so
// every iteration really simulates. Compare with:
//
//	go test -bench 'BenchmarkSweepFused' -benchtime 2x .
func BenchmarkSweepFused(b *testing.B) {
	axis := sim.AllFigureConfigs()[:16]
	spec := sweep.Spec{
		Name:       "bench-fused",
		Workloads:  []string{"Lu"},
		Filters:    axis,
		FilterMode: sweep.ModeEach,
		Scale:      benchScale * 0.5,
	}
	runSweep := func(b *testing.B, spec sweep.Spec) *sweep.Result {
		b.Helper()
		eng := engine.New(engine.Options{CacheEntries: -1})
		defer eng.Close()
		res, err := sweep.Run(context.Background(), sim.NewRunner(eng), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("fused", func(b *testing.B) {
		var cells int
		for i := 0; i < b.N; i++ {
			cells = len(runSweep(b, spec).Cells)
		}
		b.ReportMetric(float64(cells), "cells")
	})
	b.Run("per-cell", func(b *testing.B) {
		forced := spec
		forced.NoFuse = true
		var cells int
		for i := 0; i < b.N; i++ {
			cells = len(runSweep(b, forced).Cells)
		}
		b.ReportMetric(float64(cells), "cells")
	})
	b.Run("single", func(b *testing.B) {
		sp, err := workload.ByName("Lu")
		if err != nil {
			b.Fatal(err)
		}
		sp = sp.Scale(spec.Scale)
		cfg := smp.PaperConfig(4).WithFilters(jetty.MustParse(axis[0]))
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunApp(sp, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFilterProbe measures raw probe throughput of each variant —
// the operation on every snoop's critical path.
func BenchmarkFilterProbe(b *testing.B) {
	for _, name := range []string{"EJ-32x4", "IJ-10x4x7", "HJ(IJ-10x4x7,EJ-32x4)"} {
		b.Run(name, func(b *testing.B) {
			f := jetty.MustParse(name).New(2)
			for i := 0; i < 4096; i++ {
				f.BlockAllocated(uint64(i * 3))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := uint64(i) & 0xffff
				f.Probe(u, u/2)
			}
		})
	}
}

// BenchmarkAccessHotPath measures the per-access cost of the simulation
// hot path on the paper's machine with its headline filter (the best
// hybrid), driving a pre-generated 256K-reference Ocean stream through
// StepBatch — exactly how the batched replay loop feeds the machine.
// Two modes, both tracked in PERFORMANCE.md:
//
//   - run: one complete experiment per iteration (machine construction
//     plus the cold-to-warm replay with all its misses, snoop broadcasts
//     and evictions) — the cost every suite, sweep cell and trace replay
//     actually pays. This is the headline ≥2x-vs-pre-PR number.
//   - steady: the same machine replaying the stream repeatedly after a
//     warm-up pass — the sustained inner loop, which must stay at
//     0 allocs/op (TestStepSteadyStateAllocs asserts the same property).
//   - sampled: steady with an interval sampler attached (8192-access
//     windows). PERFORMANCE.md tracks sampled-vs-steady as the sampling
//     overhead, which must stay under 5%; the 0 allocs/op guarantee
//     holds here too (TestStepSteadyStateAllocsSampled).
func BenchmarkAccessHotPath(b *testing.B) {
	cfg := smp.PaperConfig(4).WithFilters(jetty.MustParse(bestHybrid))
	sp, err := workload.ByName("Ocean")
	if err != nil {
		b.Fatal(err)
	}
	src := sp.Source(4)
	recs := make([]trace.Rec, 1<<18)
	for i := range recs {
		r, _ := src.Next(i % 4)
		recs[i] = trace.Rec{Addr: r.Addr, CPU: int32(i % 4), Op: r.Op}
	}
	perAccess := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(recs)), "ns/access")
	}
	b.Run("run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := smp.New(cfg)
			sys.StepBatch(recs)
		}
		perAccess(b)
	})
	b.Run("steady", func(b *testing.B) {
		sys := smp.New(cfg)
		sys.StepBatch(recs) // cold pass: reach steady state before timing
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.StepBatch(recs)
		}
		perAccess(b)
	})
	b.Run("sampled", func(b *testing.B) {
		const interval = 8192
		sys := smp.New(cfg)
		sm := metrics.NewSampler(metrics.Config{
			Interval: interval,
			Filters:  len(cfg.Filters),
			Capacity: len(recs)/interval + 4,
		})
		sys.SetSampler(sm)
		sys.StepBatch(recs) // cold pass, also grows the window arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sm.Rewind() // keep retention bounded; the delta base survives
			sys.StepBatch(recs)
		}
		perAccess(b)
		if len(sm.Windows()) == 0 {
			b.Fatal("sampler emitted no windows")
		}
	})
}

// BenchmarkTraceReplay measures end-to-end trace replay throughput: a
// pre-encoded in-memory JTRC trace decoded and stepped through the
// machine each iteration. Tracked in PERFORMANCE.md.
func BenchmarkTraceReplay(b *testing.B) {
	cfg := smp.PaperConfig(4).WithFilters(jetty.MustParse(bestHybrid))
	sp, err := workload.ByName("Ocean")
	if err != nil {
		b.Fatal(err)
	}
	sp = sp.Scale(0.05)
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, cfg.CPUs, trace.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.RunAppCapturedCtx(context.Background(), sp, cfg, tw, nil); err != nil {
		b.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	in, err := sim.LoadTrace("bench", buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTraceCtx(context.Background(), in, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(in.Records), "records/op")
}

// BenchmarkSystemStep measures end-to-end simulator throughput with the
// full figure filter bank attached.
func BenchmarkSystemStep(b *testing.B) {
	filters, err := jetty.ParseAll(sim.AllFigureConfigs())
	if err != nil {
		b.Fatal(err)
	}
	cfg := smp.PaperConfig(4).WithFilters(filters...)
	sys := smp.New(cfg)
	sp, _ := workload.ByName("Ocean")
	src := sp.Source(4)
	refs := make([]trace.Ref, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		r, _ := src.Next(i % 4)
		refs = append(refs, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(i%4, refs[i%len(refs)])
	}
}
